//! Disk-backed block store (the SSD/HDD tiers in a real deployment).
//!
//! Each block is one file `blk_<id>.dat` in the store's directory, with a
//! small self-describing header (magic, kind, generation stamp, length,
//! CRC-32, seed). The index is rebuilt by scanning the directory on open,
//! so a restarted worker re-reports its blocks — the mechanism behind block
//! reports after failures (paper §5).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use octopus_common::{Block, BlockData, BlockId, FsError, GenStamp, Result};

use crate::store::{BlockStore, StoredBlockInfo};

const MAGIC: [u8; 4] = *b"OCTB";
const KIND_REAL: u8 = 0;
const KIND_SYNTHETIC: u8 = 1;
const HEADER_LEN: usize = 4 + 1 + 1 + 8 + 8 + 4 + 8; // 34 bytes

struct Inner {
    index: HashMap<BlockId, StoredBlockInfo>,
    used: u64,
}

/// A block store persisting each block as a file under `dir`.
pub struct FileStore {
    dir: PathBuf,
    capacity: u64,
    inner: RwLock<Inner>,
}

fn encode_header(block: &Block, kind: u8, checksum: u32, seed: u64) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(&MAGIC);
    h[4] = 1; // version
    h[5] = kind;
    h[6..14].copy_from_slice(&block.gen.0.to_le_bytes());
    h[14..22].copy_from_slice(&block.len.to_le_bytes());
    h[22..26].copy_from_slice(&checksum.to_le_bytes());
    h[26..34].copy_from_slice(&seed.to_le_bytes());
    h
}

struct Header {
    kind: u8,
    gen: u64,
    len: u64,
    checksum: u32,
    seed: u64,
}

fn decode_header(h: &[u8]) -> Result<Header> {
    if h.len() < HEADER_LEN || h[0..4] != MAGIC {
        return Err(FsError::Io("bad block file header".into()));
    }
    if h[4] != 1 {
        return Err(FsError::Io(format!("unsupported block file version {}", h[4])));
    }
    Ok(Header {
        kind: h[5],
        gen: u64::from_le_bytes(h[6..14].try_into().unwrap()),
        len: u64::from_le_bytes(h[14..22].try_into().unwrap()),
        checksum: u32::from_le_bytes(h[22..26].try_into().unwrap()),
        seed: u64::from_le_bytes(h[26..34].try_into().unwrap()),
    })
}

impl FileStore {
    /// Opens (or creates) a store rooted at `dir` with the given logical
    /// capacity, scanning existing block files to rebuild the index.
    pub fn open(dir: impl AsRef<Path>, capacity: u64) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut index = HashMap::new();
        let mut used = 0u64;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(id) = name
                .strip_prefix("blk_")
                .and_then(|s| s.strip_suffix(".dat"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            let mut f = fs::File::open(entry.path())?;
            let mut h = [0u8; HEADER_LEN];
            if f.read_exact(&mut h).is_err() {
                continue; // truncated file: skip; scrubber will re-replicate
            }
            let Ok(hdr) = decode_header(&h) else { continue };
            let block = Block { id: BlockId(id), gen: GenStamp(hdr.gen), len: hdr.len };
            used += hdr.len;
            index.insert(block.id, StoredBlockInfo { block, checksum: hdr.checksum });
        }
        Ok(Self { dir, capacity, inner: RwLock::new(Inner { index, used }) })
    }

    fn path_of(&self, id: BlockId) -> PathBuf {
        self.dir.join(format!("blk_{}.dat", id.0))
    }

    fn read_file(&self, id: BlockId) -> Result<(Header, Vec<u8>)> {
        let mut f =
            fs::File::open(self.path_of(id)).map_err(|_| FsError::NotFound(id.to_string()))?;
        let mut all = Vec::new();
        f.read_to_end(&mut all)?;
        let hdr = decode_header(&all)?;
        Ok((hdr, all.split_off(HEADER_LEN)))
    }
}

impl BlockStore for FileStore {
    fn put(&self, block: Block, data: &BlockData) -> Result<()> {
        if data.len() != block.len {
            return Err(FsError::InvalidArgument(format!(
                "block {} declares {} bytes but payload has {}",
                block.id,
                block.len,
                data.len()
            )));
        }
        {
            let g = self.inner.read();
            if g.index.contains_key(&block.id) {
                return Err(FsError::AlreadyExists(block.id.to_string()));
            }
            if g.used + block.len > self.capacity {
                return Err(FsError::OutOfCapacity(format!(
                    "file store {}: {} + {} > {}",
                    self.dir.display(),
                    g.used,
                    block.len,
                    self.capacity
                )));
            }
        }
        let checksum = data.checksum();
        let tmp = self.dir.join(format!("blk_{}.tmp", block.id.0));
        {
            let mut f = fs::File::create(&tmp)?;
            match data {
                BlockData::Real(b) => {
                    f.write_all(&encode_header(&block, KIND_REAL, checksum, 0))?;
                    f.write_all(b)?;
                }
                BlockData::Synthetic { seed, .. } => {
                    f.write_all(&encode_header(&block, KIND_SYNTHETIC, checksum, *seed))?;
                }
            }
            f.sync_all()?;
        }
        fs::rename(&tmp, self.path_of(block.id))?;
        let mut g = self.inner.write();
        // Re-check under the write lock (another writer may have raced us).
        if g.index.contains_key(&block.id) {
            return Err(FsError::AlreadyExists(block.id.to_string()));
        }
        g.used += block.len;
        g.index.insert(block.id, StoredBlockInfo { block, checksum });
        Ok(())
    }

    fn get(&self, id: BlockId) -> Result<BlockData> {
        let expected = {
            let g = self.inner.read();
            g.index.get(&id).ok_or_else(|| FsError::NotFound(id.to_string()))?.checksum
        };
        let (hdr, payload) = self.read_file(id)?;
        let data = match hdr.kind {
            KIND_REAL => BlockData::Real(Bytes::from(payload)),
            KIND_SYNTHETIC => BlockData::Synthetic { len: hdr.len, seed: hdr.seed },
            k => return Err(FsError::Io(format!("unknown block kind {k}"))),
        };
        let actual = data.checksum();
        if actual != expected {
            return Err(FsError::ChecksumMismatch { expected, actual });
        }
        Ok(data)
    }

    fn delete(&self, id: BlockId) -> Result<()> {
        let mut g = self.inner.write();
        let info = g.index.remove(&id).ok_or_else(|| FsError::NotFound(id.to_string()))?;
        g.used -= info.block.len;
        drop(g);
        fs::remove_file(self.path_of(id))?;
        Ok(())
    }

    fn contains(&self, id: BlockId) -> bool {
        self.inner.read().index.contains_key(&id)
    }

    fn blocks(&self) -> Vec<StoredBlockInfo> {
        self.inner.read().index.values().copied().collect()
    }

    fn used(&self) -> u64 {
        self.inner.read().used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn verify(&self, id: BlockId) -> Result<u32> {
        self.get(id).map(|d| d.checksum())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "octopus_filestore_{tag}_{}_{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn blk(id: u64, len: u64) -> Block {
        Block { id: BlockId(id), gen: GenStamp(2), len }
    }

    #[test]
    fn round_trip_real_payload() {
        let dir = tmpdir("rt");
        let s = FileStore::open(&dir, 10_000).unwrap();
        let d = BlockData::generate_real(500, 3);
        s.put(blk(1, 500), &d).unwrap();
        assert_eq!(s.get(BlockId(1)).unwrap(), d);
        assert_eq!(s.used(), 500);
        s.delete(BlockId(1)).unwrap();
        assert!(!s.contains(BlockId(1)));
        assert!(!s.path_of(BlockId(1)).exists());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn index_survives_reopen() {
        let dir = tmpdir("reopen");
        {
            let s = FileStore::open(&dir, 10_000).unwrap();
            s.put(blk(7, 100), &BlockData::generate_real(100, 7)).unwrap();
            s.put(blk(8, 200), &BlockData::Synthetic { len: 200, seed: 5 }).unwrap();
        }
        let s2 = FileStore::open(&dir, 10_000).unwrap();
        assert_eq!(s2.used(), 300);
        assert!(s2.contains(BlockId(7)));
        let d = s2.get(BlockId(8)).unwrap();
        assert_eq!(d, BlockData::Synthetic { len: 200, seed: 5 });
        let info: Vec<_> = s2.blocks();
        assert_eq!(info.len(), 2);
        let b7 = info.iter().find(|b| b.block.id == BlockId(7)).unwrap();
        assert_eq!(b7.block.gen, GenStamp(2));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn detects_on_disk_corruption() {
        let dir = tmpdir("corrupt");
        let s = FileStore::open(&dir, 10_000).unwrap();
        s.put(blk(1, 100), &BlockData::generate_real(100, 1)).unwrap();
        // Flip a payload byte behind the store's back.
        let p = dir.join("blk_1.dat");
        let mut raw = fs::read(&p).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0xFF;
        fs::write(&p, raw).unwrap();
        assert!(matches!(s.get(BlockId(1)), Err(FsError::ChecksumMismatch { .. })));
        assert!(s.verify(BlockId(1)).is_err());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn capacity_enforced() {
        let dir = tmpdir("cap");
        let s = FileStore::open(&dir, 150).unwrap();
        s.put(blk(1, 100), &BlockData::generate_real(100, 1)).unwrap();
        let err = s.put(blk(2, 100), &BlockData::generate_real(100, 2));
        assert!(matches!(err, Err(FsError::OutOfCapacity(_))));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn synthetic_files_are_tiny_on_disk() {
        let dir = tmpdir("synth");
        let s = FileStore::open(&dir, u64::MAX).unwrap();
        s.put(blk(1, 1 << 30), &BlockData::Synthetic { len: 1 << 30, seed: 1 }).unwrap();
        let on_disk = fs::metadata(dir.join("blk_1.dat")).unwrap().len();
        assert!(on_disk < 100, "synthetic block file is {on_disk} bytes");
        assert_eq!(s.used(), 1 << 30); // logical accounting
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unknown_block_errors() {
        let dir = tmpdir("missing");
        let s = FileStore::open(&dir, 100).unwrap();
        assert!(matches!(s.get(BlockId(9)), Err(FsError::NotFound(_))));
        assert!(matches!(s.delete(BlockId(9)), Err(FsError::NotFound(_))));
        fs::remove_dir_all(dir).ok();
    }
}
