//! Per-worker media bookkeeping.
//!
//! A [`Media`] couples a [`BlockStore`] with its identity (tier, id), its
//! measured throughput, and a live count of active I/O connections — the
//! `NrConn[m]` statistic the placement and retrieval policies consume
//! (paper §3.2, §4.2). [`MediaManager`] owns all media of one worker and
//! produces the heartbeat statistics.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use octopus_common::{BlockId, FsError, MediaId, MediaStats, RackId, Result, TierId, WorkerId};

use crate::store::BlockStore;

/// One storage medium of a worker.
pub struct Media {
    /// Cluster-wide medium id.
    pub id: MediaId,
    /// Tier the medium belongs to.
    pub tier: TierId,
    /// The block store.
    pub store: Arc<dyn BlockStore>,
    nr_conn: Arc<AtomicU32>,
    thru: RwLock<(f64, f64)>, // (write_bps, read_bps)
}

impl Media {
    /// Creates a medium with nominal throughputs (replaced by the startup
    /// probe in real deployments; authoritative in simulations).
    pub fn new(
        id: MediaId,
        tier: TierId,
        store: Arc<dyn BlockStore>,
        write_bps: f64,
        read_bps: f64,
    ) -> Self {
        Self {
            id,
            tier,
            store,
            nr_conn: Arc::new(AtomicU32::new(0)),
            thru: RwLock::new((write_bps, read_bps)),
        }
    }

    /// Current number of active I/O connections.
    pub fn nr_conn(&self) -> u32 {
        self.nr_conn.load(Ordering::Relaxed)
    }

    /// Opens a connection; the returned guard decrements the count on drop.
    pub fn connect(&self) -> ConnGuard {
        self.nr_conn.fetch_add(1, Ordering::Relaxed);
        ConnGuard { counter: Arc::clone(&self.nr_conn) }
    }

    /// Records measured throughputs (bytes/s).
    pub fn set_throughput(&self, write_bps: f64, read_bps: f64) {
        *self.thru.write() = (write_bps, read_bps);
    }

    /// `(write_bps, read_bps)`.
    pub fn throughput(&self) -> (f64, f64) {
        *self.thru.read()
    }
}

/// RAII guard for one active I/O connection to a medium or worker.
pub struct ConnGuard {
    counter: Arc<AtomicU32>,
}

impl ConnGuard {
    /// Wraps an external counter (used for per-worker NIC connections).
    pub fn acquire(counter: &Arc<AtomicU32>) -> ConnGuard {
        counter.fetch_add(1, Ordering::Relaxed);
        ConnGuard { counter: Arc::clone(counter) }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::Relaxed);
    }
}

/// All media of one worker.
pub struct MediaManager {
    worker: WorkerId,
    rack: RackId,
    media: Vec<Arc<Media>>,
}

impl MediaManager {
    /// Creates a manager for the given worker.
    pub fn new(worker: WorkerId, rack: RackId, media: Vec<Arc<Media>>) -> Self {
        Self { worker, rack, media }
    }

    /// The worker owning these media.
    pub fn worker(&self) -> WorkerId {
        self.worker
    }

    /// The worker's rack.
    pub fn rack(&self) -> RackId {
        self.rack
    }

    /// All media.
    pub fn media(&self) -> &[Arc<Media>] {
        &self.media
    }

    /// Looks up a medium by id.
    pub fn get(&self, id: MediaId) -> Result<&Arc<Media>> {
        self.media.iter().find(|m| m.id == id).ok_or_else(|| FsError::UnknownMedia(id.to_string()))
    }

    /// Finds the medium holding a given block, if any.
    pub fn find_block(&self, id: BlockId) -> Option<&Arc<Media>> {
        self.media.iter().find(|m| m.store.contains(id))
    }

    /// The per-media statistics reported in heartbeats.
    pub fn stats(&self) -> Vec<MediaStats> {
        self.media
            .iter()
            .map(|m| {
                let (w, r) = m.throughput();
                MediaStats {
                    media: m.id,
                    worker: self.worker,
                    rack: self.rack,
                    tier: m.tier,
                    capacity: m.store.capacity(),
                    remaining: m.store.remaining(),
                    nr_conn: m.nr_conn(),
                    write_thru: w,
                    read_thru: r,
                }
            })
            .collect()
    }

    /// Total bytes stored across all media.
    pub fn used(&self) -> u64 {
        self.media.iter().map(|m| m.store.used()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryStore;
    use octopus_common::{Block, BlockData, GenStamp};

    fn manager() -> MediaManager {
        let media = (0..3)
            .map(|i| {
                Arc::new(Media::new(
                    MediaId(i),
                    TierId(i as u8),
                    Arc::new(MemoryStore::new(1000)),
                    100.0 * (i + 1) as f64,
                    200.0 * (i + 1) as f64,
                ))
            })
            .collect();
        MediaManager::new(WorkerId(5), RackId(1), media)
    }

    #[test]
    fn conn_guard_counts() {
        let mgr = manager();
        let m = mgr.get(MediaId(0)).unwrap();
        assert_eq!(m.nr_conn(), 0);
        let g1 = m.connect();
        let g2 = m.connect();
        assert_eq!(m.nr_conn(), 2);
        drop(g1);
        assert_eq!(m.nr_conn(), 1);
        drop(g2);
        assert_eq!(m.nr_conn(), 0);
    }

    #[test]
    fn stats_reflect_store_state() {
        let mgr = manager();
        let m = mgr.get(MediaId(1)).unwrap();
        m.store
            .put(
                Block { id: BlockId(1), gen: GenStamp(0), len: 100 },
                &BlockData::generate_real(100, 1),
            )
            .unwrap();
        let _conn = m.connect();
        let stats = mgr.stats();
        assert_eq!(stats.len(), 3);
        let s1 = stats.iter().find(|s| s.media == MediaId(1)).unwrap();
        assert_eq!(s1.worker, WorkerId(5));
        assert_eq!(s1.rack, RackId(1));
        assert_eq!(s1.tier, TierId(1));
        assert_eq!(s1.remaining, 900);
        assert_eq!(s1.nr_conn, 1);
        assert_eq!(s1.write_thru, 200.0);
        assert_eq!(mgr.used(), 100);
    }

    #[test]
    fn find_block_locates_medium() {
        let mgr = manager();
        mgr.get(MediaId(2))
            .unwrap()
            .store
            .put(
                Block { id: BlockId(9), gen: GenStamp(0), len: 10 },
                &BlockData::generate_real(10, 9),
            )
            .unwrap();
        assert_eq!(mgr.find_block(BlockId(9)).unwrap().id, MediaId(2));
        assert!(mgr.find_block(BlockId(1)).is_none());
    }

    #[test]
    fn unknown_media_errors() {
        let mgr = manager();
        assert!(matches!(mgr.get(MediaId(9)), Err(FsError::UnknownMedia(_))));
    }

    #[test]
    fn throughput_can_be_updated_by_probe() {
        let mgr = manager();
        let m = mgr.get(MediaId(0)).unwrap();
        m.set_throughput(555.0, 777.0);
        assert_eq!(m.throughput(), (555.0, 777.0));
    }
}
