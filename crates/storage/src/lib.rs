//! Worker-side storage for OctopusFS.
//!
//! Each worker manages several *storage media* (paper §2.2) — e.g. one
//! memory device, one SSD, three HDDs — grouped cluster-wide into tiers.
//! This crate provides:
//!
//! - [`BlockStore`]: the interface one medium exposes (put/get/delete blocks
//!   with checksum verification),
//! - three implementations: [`MemoryStore`] (heap-backed, the Memory tier),
//!   [`FileStore`] (real files on local disk, persistent tiers), and
//!   [`SimStore`] (metadata-only, used by the simulation-scale experiments),
//! - [`Media`] and [`MediaManager`]: per-worker bookkeeping of media,
//!   active-connection counts, and the statistics heartbeats report,
//! - [`probe`]: the startup I/O test that measures each medium's sustained
//!   write/read throughput (paper §3.2, "Throughput maximization").

mod file;
mod media;
mod memory;
mod probe;
mod sim;
mod store;

pub use file::FileStore;
pub use media::{ConnGuard, Media, MediaManager};
pub use memory::MemoryStore;
pub use probe::{probe, ProbeResult};
pub use sim::SimStore;
pub use store::{BlockStore, StoredBlockInfo};
