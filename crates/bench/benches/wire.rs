//! Wire-protocol codec throughput (every RPC pays this cost).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use octopus_common::wire::{decode, encode};
use octopus_common::{
    Block, BlockId, GenStamp, LocatedBlock, Location, MediaId, MediaStats, RackId, TierId, WorkerId,
};
use std::hint::black_box;

fn sample_located() -> Vec<LocatedBlock> {
    (0..8u64)
        .map(|i| LocatedBlock {
            block: Block { id: BlockId(i), gen: GenStamp(1), len: 128 << 20 },
            offset: i * (128 << 20),
            locations: (0..3u32)
                .map(|r| Location {
                    worker: WorkerId(r),
                    media: MediaId(r * 5),
                    tier: TierId((r % 3) as u8),
                })
                .collect(),
        })
        .collect()
}

fn sample_stats() -> Vec<MediaStats> {
    (0..45u32)
        .map(|i| MediaStats {
            media: MediaId(i),
            worker: WorkerId(i / 5),
            rack: RackId((i % 3) as u16),
            tier: TierId((i % 3) as u8),
            capacity: 1 << 37,
            remaining: 1 << 36,
            nr_conn: i % 7,
            write_thru: 1.3e8,
            read_thru: 1.8e8,
        })
        .collect()
}

fn bench_wire(c: &mut Criterion) {
    let located = sample_located();
    let enc = encode(&located);
    let mut g = c.benchmark_group("wire/located_blocks_8x3");
    g.throughput(Throughput::Bytes(enc.len() as u64));
    g.bench_function("encode", |b| b.iter(|| encode(black_box(&located))));
    g.bench_function("decode", |b| {
        b.iter(|| decode::<Vec<LocatedBlock>>(black_box(&enc)).unwrap())
    });
    g.finish();

    let stats = sample_stats();
    let enc = encode(&stats);
    let mut g = c.benchmark_group("wire/heartbeat_45_media");
    g.throughput(Throughput::Bytes(enc.len() as u64));
    g.bench_function("encode", |b| b.iter(|| encode(black_box(&stats))));
    g.bench_function("decode", |b| b.iter(|| decode::<Vec<MediaStats>>(black_box(&enc)).unwrap()));
    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
