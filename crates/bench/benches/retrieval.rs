//! Retrieval-policy ordering latency (invoked on every block open).

use criterion::{criterion_group, criterion_main, Criterion};
use octopus_common::{ClientLocation, Location, WorkerId};
use octopus_policies::{ClusterSnapshot, HdfsLocalityPolicy, RateBasedPolicy, RetrievalPolicy};
use std::hint::black_box;

fn locations(snap: &ClusterSnapshot, count: usize) -> Vec<Location> {
    snap.media
        .iter()
        .step_by(snap.media.len() / count.max(1))
        .take(count)
        .map(|m| Location { worker: m.worker, media: m.media, tier: m.tier })
        .collect()
}

fn bench_retrieval(c: &mut Criterion) {
    let snap = ClusterSnapshot::synthetic(9, 3, 3);
    let client = ClientLocation::OnWorker(WorkerId(4));
    for count in [3usize, 10] {
        let locs = locations(&snap, count);
        let rate = RateBasedPolicy::new(1);
        c.bench_function(format!("retrieval/rate_based/{count}"), |b| {
            b.iter(|| rate.order(black_box(&snap), client, black_box(&locs)))
        });
        let hdfs = HdfsLocalityPolicy::new(1);
        c.bench_function(format!("retrieval/hdfs_locality/{count}"), |b| {
            b.iter(|| hdfs.order(black_box(&snap), client, black_box(&locs)))
        });
    }
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
