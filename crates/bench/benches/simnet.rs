//! Simulator engine throughput: events/sec with many concurrent flows
//! (bounds how large an experiment the harness can drive).

use criterion::{criterion_group, criterion_main, Criterion};
use octopus_simnet::SimNet;
use std::hint::black_box;

fn bench_simnet(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet/drain");
    for flows in [50usize, 200] {
        g.bench_function(format!("flows={flows}"), |b| {
            b.iter(|| {
                let mut net = SimNet::new();
                let res: Vec<_> =
                    (0..10).map(|i| net.add_resource(&format!("r{i}"), 1000.0)).collect();
                for i in 0..flows {
                    let a = res[i % res.len()];
                    let b2 = res[(i * 7 + 3) % res.len()];
                    net.start_flow(1000.0 + i as f64, vec![a, b2]);
                }
                let mut n = 0;
                while net.next_event().is_some() {
                    n += 1;
                }
                black_box(n)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simnet);
criterion_main!(benches);
