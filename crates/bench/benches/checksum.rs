//! CRC-32 throughput microbench (block checksums are on every data path).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use octopus_common::checksum::crc32;
use std::hint::black_box;

fn bench_crc32(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32");
    for size in [4usize << 10, 64 << 10, 1 << 20] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31) as u8).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{}KB", size >> 10), |b| b.iter(|| crc32(black_box(&data))));
    }
    g.finish();
}

criterion_group!(benches, bench_crc32);
criterion_main!(benches);
