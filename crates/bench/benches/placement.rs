//! Placement policy microbenches: the MOOP greedy algorithm's O(s·r²)
//! latency versus cluster size and replica count (paper §3.3 argues it is
//! essentially linear in the number of media), the ablations from
//! DESIGN.md §5 (rack pruning on/off; greedy vs exhaustive), and the
//! baseline policies for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use octopus_common::config::PolicyConfig;
use octopus_common::{ClientLocation, MediaStats};
use octopus_policies::objectives::{score, Objective, ObjectiveContext};
use octopus_policies::{
    ClusterSnapshot, GreedyPolicy, HdfsPolicy, PlacementPolicy, PlacementRequest, RuleBasedPolicy,
};
use std::hint::black_box;

fn mem_cfg() -> PolicyConfig {
    PolicyConfig { memory_placement_enabled: true, ..PolicyConfig::default() }
}

fn bench_moop_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("moop/cluster_size");
    for workers in [9u32, 30, 100] {
        let snap = ClusterSnapshot::synthetic(workers, 3, 3);
        let policy = GreedyPolicy::moop(mem_cfg());
        let req = PlacementRequest::unspecified(3, 128 << 20, ClientLocation::OffCluster);
        g.bench_function(format!("workers={workers}"), |b| {
            b.iter(|| policy.place(black_box(&snap), black_box(&req)).unwrap())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("moop/replicas");
    let snap = ClusterSnapshot::synthetic(9, 3, 3);
    let policy = GreedyPolicy::moop(mem_cfg());
    for r in [1usize, 3, 6, 10] {
        let req = PlacementRequest::unspecified(r, 128 << 20, ClientLocation::OffCluster);
        g.bench_function(format!("r={r}"), |b| {
            b.iter(|| policy.place(black_box(&snap), black_box(&req)).unwrap())
        });
    }
    g.finish();
}

fn bench_rack_pruning_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("moop/rack_pruning");
    let snap = ClusterSnapshot::synthetic(30, 3, 3);
    let req = PlacementRequest::unspecified(3, 128 << 20, ClientLocation::OffCluster);
    for pruning in [true, false] {
        let policy = GreedyPolicy::moop(PolicyConfig { rack_pruning: pruning, ..mem_cfg() });
        g.bench_function(format!("pruning={pruning}"), |b| {
            b.iter(|| policy.place(black_box(&snap), black_box(&req)).unwrap())
        });
    }
    g.finish();
}

/// Greedy vs exhaustive enumeration (O(s·r²) vs O(r·sʳ)) — the paper's
/// §3.3 complexity argument on a small cluster where exhaustive is even
/// feasible.
fn bench_greedy_vs_exhaustive(c: &mut Criterion) {
    let snap = ClusterSnapshot::synthetic(3, 2, 1); // s = 9 media
    let refs: Vec<&MediaStats> = snap.media.iter().collect();
    let ctx = ObjectiveContext::new(&refs, 128 << 20, 3, 3, 2);
    let mut g = c.benchmark_group("moop/greedy_vs_exhaustive_s9_r3");
    let policy = GreedyPolicy::moop(mem_cfg());
    let req = PlacementRequest::unspecified(3, 128 << 20, ClientLocation::OffCluster);
    g.bench_function("greedy", |b| {
        b.iter(|| policy.place(black_box(&snap), black_box(&req)).unwrap())
    });
    g.bench_function("exhaustive", |b| {
        b.iter(|| {
            let n = refs.len();
            let mut best = f64::INFINITY;
            let mut arg = (0, 0, 0);
            for i in 0..n {
                for j in (i + 1)..n {
                    for k in (j + 1)..n {
                        let s = score(&[refs[i], refs[j], refs[k]], &ctx, &Objective::ALL);
                        if s < best {
                            best = s;
                            arg = (i, j, k);
                        }
                    }
                }
            }
            black_box(arg)
        })
    });
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let snap = ClusterSnapshot::synthetic(9, 3, 3);
    let req = PlacementRequest::unspecified(3, 128 << 20, ClientLocation::OffCluster);
    let mut g = c.benchmark_group("placement/baselines");
    let rule = RuleBasedPolicy::new(mem_cfg(), 7);
    g.bench_function("rule_based", |b| {
        b.iter(|| rule.place(black_box(&snap), black_box(&req)).unwrap())
    });
    let hdfs = HdfsPolicy::hdd_only(7);
    g.bench_function("hdfs_default", |b| {
        b.iter(|| hdfs.place(black_box(&snap), black_box(&req)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_moop_scaling,
    bench_rack_pruning_ablation,
    bench_greedy_vs_exhaustive,
    bench_baselines
);
criterion_main!(benches);
