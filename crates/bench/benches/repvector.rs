//! Replication-vector codec microbench: the paper stresses the 64-bit
//! encoding is "very efficient to use and store" (§2.3).

use criterion::{criterion_group, criterion_main, Criterion};
use octopus_common::ReplicationVector;
use std::hint::black_box;

fn bench_repvector(c: &mut Criterion) {
    let v = ReplicationVector::mshru(1, 2, 3, 0, 2);
    c.bench_function("repvector/encode_decode", |b| {
        b.iter(|| {
            let bits = black_box(v).to_bits();
            black_box(ReplicationVector::from_bits(bits)).total()
        })
    });
    c.bench_function("repvector/diff", |b| {
        let target = ReplicationVector::mshru(0, 3, 2, 1, 0);
        b.iter(|| black_box(v).diff(black_box(target)).net_total())
    });
    c.bench_function("repvector/parse", |b| {
        b.iter(|| "<1,2,3,0;2>".parse::<ReplicationVector>().unwrap())
    });
    c.bench_function("repvector/display", |b| b.iter(|| black_box(v).to_string()));
}

criterion_group!(benches, bench_repvector);
criterion_main!(benches);
