//! Minimal fixed-width table printing for experiment output.

/// Renders rows as a fixed-width table with a header and a separator.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>width$}", width = widths[i]));
        }
        line
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Prints experiment output and mirrors it to `results/<name>.txt`
/// (relative to the working directory) so EXPERIMENTS.md can reference it.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{name}.txt")), content);
    }
}

/// Formats a float with one decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &["name", "value"],
            &[vec!["a".into(), "1.0".into()], vec!["longer".into(), "22.5".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.257), "1.26");
    }
}
