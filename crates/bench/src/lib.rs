//! Experiment harness library: the DFSIO and S-Live workload generators
//! (§7's benchmarks) and small table-formatting helpers shared by the
//! per-figure binaries.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/` (see DESIGN.md §4 for the index); `run_all` regenerates
//! everything.

pub mod dfsio;
pub mod experiments;
pub mod slive;
pub mod table;

pub use dfsio::{read_workload, write_workload, DfsioResult};
pub use slive::{run_slive, SliveResult};
