//! An S-Live-style namespace stress test (paper §7.4): hammers the master
//! with the six operation types of Table 3 and reports successful
//! operations per second per worker.
//!
//! Unlike the I/O experiments this measures the *real* master under real
//! wall-clock time — namespace operations are pure metadata work, so no
//! simulation is involved.

use std::time::Instant;

use octopus_common::{
    ClientLocation, ClusterConfig, MediaId, MediaStats, RackId, ReplicationVector, Result, TierId,
    WorkerId,
};
use octopus_master::Master;

/// Measured rates for the Table 3 operation mix, ops/sec *per worker*.
#[derive(Debug, Clone)]
pub struct SliveResult {
    /// `(operation name, ops per second per worker)`.
    pub rows: Vec<(&'static str, f64)>,
}

/// Boots a master with `n` registered, heartbeating workers (no data
/// plane needed for namespace stress).
pub fn boot_master(config: ClusterConfig) -> Result<Master> {
    let n = config.workers.len() as u32;
    let tiers = config.tiers.clone();
    let master = Master::new(config)?;
    let mut next_media = 0u32;
    for w in 0..n {
        let rack = RackId((w % 3) as u16);
        master.register_worker(WorkerId(w), rack, 1.25e9, 0);
        let media: Vec<MediaStats> = tiers
            .iter()
            .map(|t| {
                let m = MediaStats {
                    media: MediaId(next_media),
                    worker: WorkerId(w),
                    rack,
                    tier: TierId(t.id.0),
                    capacity: 1 << 40,
                    remaining: 1 << 40,
                    nr_conn: 0,
                    write_thru: 1e8,
                    read_thru: 1e8,
                };
                next_media += 1;
                m
            })
            .collect();
        master.heartbeat(WorkerId(w), media, 0, 0)?;
    }
    Ok(master)
}

fn rate(ops: usize, f: impl FnOnce() -> Result<()>) -> Result<f64> {
    let t = Instant::now();
    f()?;
    Ok(ops as f64 / t.elapsed().as_secs_f64().max(1e-9))
}

/// Runs the operation mix: `ops` operations of each type. `rv` is the
/// replication vector used for file creations (HDFS compatibility mode
/// passes `U = r`; OctopusFS mode passes full vectors).
pub fn run_slive(master: &Master, ops: usize, rv: ReplicationVector) -> Result<SliveResult> {
    let workers = master.snapshot().workers.len().max(1) as f64;
    let mut rows = Vec::new();

    let mkdir = rate(ops, || {
        for i in 0..ops {
            master.mkdir(&format!("/slive/dirs/d{i}"))?;
        }
        Ok(())
    })?;
    rows.push(("Make directory", mkdir / workers));

    let create = rate(ops, || {
        for i in 0..ops {
            master.create_file(&format!("/slive/dirs/d{}/f", i % ops), rv, None)?;
            master.complete_file(&format!("/slive/dirs/d{}/f", i % ops))?;
        }
        Ok(())
    })?;
    rows.push(("Create file", create / workers));

    let list = rate(ops, || {
        for _ in 0..ops {
            master.list("/slive/dirs")?;
        }
        Ok(())
    })?;
    rows.push(("List files", list / workers));

    let open = rate(ops, || {
        for i in 0..ops {
            master.get_file_block_locations(
                &format!("/slive/dirs/d{}/f", i % ops),
                0,
                u64::MAX,
                ClientLocation::OffCluster,
            )?;
        }
        Ok(())
    })?;
    rows.push(("Open file", open / workers));

    let rename = rate(ops, || {
        for i in 0..ops {
            master.rename(&format!("/slive/dirs/d{i}/f"), &format!("/slive/dirs/d{i}/g"))?;
        }
        Ok(())
    })?;
    rows.push(("Rename file", rename / workers));

    let delete = rate(ops, || {
        for i in 0..ops {
            master.delete(&format!("/slive/dirs/d{i}/g"), false)?;
        }
        Ok(())
    })?;
    rows.push(("Delete file", delete / workers));

    Ok(SliveResult { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slive_runs_and_reports_positive_rates() {
        let config = ClusterConfig::paper_cluster_scaled(0.01);
        let master = boot_master(config).unwrap();
        let r = run_slive(&master, 200, ReplicationVector::from_replication_factor(3)).unwrap();
        assert_eq!(r.rows.len(), 6);
        for (name, rate) in &r.rows {
            assert!(*rate > 0.0, "{name} rate must be positive");
        }
        // All files deleted again.
        assert!(master.list("/slive/dirs").unwrap().iter().all(|e| e.is_dir));
    }
}
