//! Figure 2: average write (a) and read (b) throughput per worker for five
//! degrees of parallelism and six replication vectors (§7.1).
//!
//! DFSIO writes 10 GB (replication 3 ⇒ 30 GB stored), then reads it back,
//! for every ⟨M,S,H⟩ vector and d ∈ {1,3,9,27,54}. Replica placement is
//! controlled by pinning the vector at file creation, exactly as §7.1
//! does. Reads run with a worker shift so only a fraction of reads are
//! node-local (the paper observed ~1/3 locality).

use octopus_common::{ClusterConfig, GB};

use crate::dfsio::{read_workload, write_workload};
use crate::experiments::{fig2_vectors, DEGREES};
use crate::table::{emit, f1, render};

const TOTAL_BYTES: u64 = 10 * GB;

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let vectors = fig2_vectors();
    let mut write_rows = Vec::new();
    let mut read_rows = Vec::new();
    for &d in &DEGREES {
        let mut wrow = vec![format!("d={d}")];
        let mut rrow = vec![format!("d={d}")];
        for (_, rv) in &vectors {
            let mut sim = fresh_sim();
            let (w, paths) = write_workload(&mut sim, "/dfsio", d, TOTAL_BYTES, *rv).unwrap();
            wrow.push(f1(w.mean_task_mbps()));
            let r = read_workload(&mut sim, &paths, 3).unwrap();
            rrow.push(format!("{}±{}", f1(r.mean_task_mbps()), f1(r.sem_task_mbps())));
        }
        write_rows.push(wrow);
        read_rows.push(rrow);
    }
    let mut headers = vec!["parallelism"];
    headers.extend(vectors.iter().map(|(l, _)| *l));
    let out = format!(
        "Figure 2(a) — average WRITE throughput per worker (MB/s), DFSIO 10 GB\n\n{}\n\
         Figure 2(b) — average READ throughput per worker (MB/s ± SEM)\n\n{}",
        render(&headers, &write_rows),
        render(&headers, &read_rows),
    );
    emit("fig2", &out);
    out
}

fn fresh_sim() -> octopus_core::SimCluster {
    octopus_core::SimCluster::new(ClusterConfig::paper_cluster()).unwrap()
}
