//! Use-case study: tier-aware MapReduce task scheduling (paper §6).
//!
//! §6 argues that a job scheduler "can also exploit the tiering
//! information of each block for making better scheduling decisions" —
//! i.e. run each map task on the replica node whose copy sits on the
//! fastest tier, not just any replica-local node. The paper describes but
//! does not evaluate this; here we measure it: the nine HiBench workloads
//! on Hadoop over OctopusFS, with standard locality scheduling vs
//! tier-aware scheduling. Inputs are written with memory placement
//! enabled so tiers actually differ across replicas.

use octopus_common::{ClientLocation, ReplicationVector, Result, WorkerId};
use octopus_compute::engine::{run_chain, EngineConfig, Platform};
use octopus_compute::runner::config_for;
use octopus_compute::{hibench_workloads, FsMode};
use octopus_core::SimCluster;

use crate::table::{emit, f1, f2, render};

fn run_one(w: &octopus_compute::HiBenchWorkload, tier_aware: bool) -> Result<f64> {
    let mut config = config_for(FsMode::OctopusFs);
    config.policy.memory_placement_enabled = true;
    let mut sim = SimCluster::new(config)?;
    sim.master().mkdir("/input")?;
    let per = w.input_bytes() / 9;
    let mut inputs = Vec::new();
    for p in 0..9u32 {
        let path = format!("/input/part-{p}");
        sim.submit_write(
            &path,
            per,
            ReplicationVector::from_replication_factor(3),
            ClientLocation::OnWorker(WorkerId(p)),
        )?;
        inputs.push(path);
    }
    sim.run_to_completion();
    let chain = w.to_chain(&inputs);
    let cfg = EngineConfig { tier_aware_scheduling: tier_aware, ..EngineConfig::default() };
    let t0 = sim.now();
    run_chain(&mut sim, &chain, Platform::Hadoop, &cfg)?;
    Ok(sim.now().secs_since(t0))
}

/// Runs the study and returns the report text.
pub fn run() -> String {
    let mut rows = Vec::new();
    let mut gains = Vec::new();
    for w in hibench_workloads() {
        let standard = run_one(&w, false).unwrap();
        let aware = run_one(&w, true).unwrap();
        let gain = 1.0 - aware / standard;
        gains.push(gain);
        rows.push(vec![
            w.name.to_string(),
            f1(standard),
            f1(aware),
            f2(aware / standard),
            format!("{:.0}%", gain * 100.0),
        ]);
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64;
    let out = format!(
        "Use case (§6) — tier-aware MapReduce task scheduling over OctopusFS\n\
         (Hadoop, memory placement enabled; times in virtual seconds)\n\n{}\n\
         Average improvement from tier-aware scheduling: {:.0}%\n",
        render(&["Workload", "standard (s)", "tier-aware (s)", "norm", "gain"], &rows),
        avg * 100.0
    );
    emit("usecase_sched", &out);
    out
}
