//! Figure 5: average read throughput per worker for five degrees of
//! parallelism under the two data-retrieval policies (§7.3).
//!
//! 10 GB is generated with the MOOP placement policy (memory enabled so
//! higher tiers hold replicas), then read with (a) the OctopusFS
//! rate-based ordering and (b) the HDFS locality-only ordering. Identical
//! seeds make the placements identical across the pair, so the comparison
//! isolates retrieval.

use octopus_common::config::RetrievalPolicyKind;
use octopus_common::{ClusterConfig, ReplicationVector, GB};
use octopus_core::SimCluster;

use crate::dfsio::{read_workload, write_workload};
use crate::experiments::DEGREES;
use crate::table::{emit, f1, render};

const TOTAL_BYTES: u64 = 10 * GB;

fn config(retrieval: RetrievalPolicyKind) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cluster();
    c.policy.memory_placement_enabled = true;
    c.policy.retrieval = retrieval;
    c
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut rows = Vec::new();
    for &d in &DEGREES {
        let mut row = vec![format!("d={d}")];
        let mut rates = Vec::new();
        for retrieval in [RetrievalPolicyKind::RateBased, RetrievalPolicyKind::HdfsLocality] {
            let mut sim = SimCluster::new(config(retrieval)).unwrap();
            let (_, paths) = write_workload(
                &mut sim,
                "/dfsio",
                d,
                TOTAL_BYTES,
                ReplicationVector::from_replication_factor(3),
            )
            .unwrap();
            let r = read_workload(&mut sim, &paths, 3).unwrap();
            rates.push(r.mean_task_mbps());
            row.push(f1(r.mean_task_mbps()));
        }
        row.push(format!("{:.1}x", rates[0] / rates[1]));
        rows.push(row);
    }
    let out = format!(
        "Figure 5 — average read throughput per worker (MB/s), two retrieval policies\n\
         (data generated with MOOP placement, memory enabled — §7.3)\n\n{}",
        render(&["parallelism", "OctopusFS", "HDFS", "speedup"], &rows)
    );
    emit("fig5", &out);
    out
}
