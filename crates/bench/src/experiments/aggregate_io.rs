//! Aggregate-throughput sweep over concurrent clients: N independent
//! DFSIO-style clients write and read their own files against one
//! 4-worker TCP cluster under device-throughput emulation. The sweep
//! measures how aggregate bandwidth scales as clients are added — the
//! number the multiplexed transport exists for: with one (or few)
//! connections per peer, an in-flight map instead of a
//! connection-per-request pool, and a bounded dispatch pool on the
//! servers, adding clients must add throughput instead of exhausting
//! sockets and threads. Mirrors a text table to
//! `results/aggregate_io.txt` and a machine-readable summary to
//! `results/aggregate_io.json`.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, RpcConfig, MB};
use octopus_core::NetCluster;

use crate::table::{emit, f2, render};

/// Blocks per client file.
const BLOCKS: usize = 2;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

/// Full run (the `run_all` entry): clients up to 256.
pub fn run() -> String {
    run_mode(false)
}

/// CI smoke: clients up to 64 only, same gate line.
pub fn run_quick() -> String {
    run_mode(true)
}

fn run_mode(quick: bool) -> String {
    let block_size = MB / 4;
    let sweep: &[usize] = if quick { &[1, 8, 64] } else { &[1, 8, 64, 256] };
    let mut config = ClusterConfig::test_cluster(4, 256 * MB, block_size);
    // Leases last 20 heartbeats; under deep request queues (256 clients on
    // 4 workers) a too-short lease expires between a client's own metadata
    // calls and recovery force-completes its file mid-write.
    config.heartbeat_ms = 200;
    // Pace transfers at each tier's device throughput, scaled down 16x:
    // on loopback every medium is RAM, so without pacing the sweep
    // measures memcpy and scheduler noise. Slower emulated devices keep
    // the workload device-bound, where aggregate scaling is limited by
    // media and dispatch capacity rather than loopback CPU cost.
    config.emulate_media_bps = true;
    for w in &mut config.workers {
        for m in &mut w.media {
            m.write_bps /= 16.0;
            m.read_bps /= 16.0;
        }
    }
    let cluster = Arc::new(NetCluster::start(config).unwrap());
    cluster.client(ClientLocation::OffCluster).mkdir("/agg").unwrap();
    let file_bytes = BLOCKS as u64 * block_size;

    let mut rows = Vec::new();
    let mut measured: Vec<(usize, f64)> = Vec::new(); // (clients, aggregate MB/s)
    for &n in sweep {
        let barrier = Arc::new(Barrier::new(n + 1));
        let mut workers_joined = Vec::new();
        for c in 0..n {
            let cluster = Arc::clone(&cluster);
            let barrier = Arc::clone(&barrier);
            workers_joined.push(std::thread::spawn(move || {
                // Each simulated client is its own process in the modeled
                // deployment: give it a private multiplexed transport (one
                // connection per peer) instead of the in-process shared
                // client, so N clients exercise N connections server-side.
                let client = cluster
                    .client(ClientLocation::OffCluster)
                    .with_rpc_config(RpcConfig { conns_per_peer: 1, ..RpcConfig::default() });
                let data = payload(file_bytes as usize, c as u64 + 1);
                let path = format!("/agg/n{n}-c{c}");
                barrier.wait();
                client
                    .write_file(&path, &data, ReplicationVector::from_replication_factor(2))
                    .unwrap();
                let back = client.read_file(&path).unwrap();
                assert_eq!(back, data, "client {c} of {n} corrupted the round trip");
            }));
        }
        barrier.wait();
        let t = Instant::now();
        for h in workers_joined {
            h.join().unwrap();
        }
        let secs = t.elapsed().as_secs_f64();
        // Bytes moved end-to-end per client: one write + one read.
        let aggregate = (n as u64 * file_bytes * 2) as f64 / MB as f64 / secs;
        measured.push((n, aggregate));

        // Recycle the namespace and capacity before the next point.
        let janitor = cluster.client(ClientLocation::OffCluster);
        for c in 0..n {
            janitor.delete(&format!("/agg/n{n}-c{c}"), false).unwrap();
        }
        cluster.run_block_report_round().unwrap();
    }

    let base = measured[0].1;
    for &(n, aggregate) in &measured {
        rows.push(vec![n.to_string(), f2(aggregate), f2(aggregate / base)]);
    }

    let kb = file_bytes / 1024;
    let mut out = format!(
        "Aggregate I/O: N concurrent clients, each writing+reading a {BLOCKS}-block \
         ({kb} KB) file\non a 4-worker TCP cluster, rf=2, emulated device throughput:\n\n"
    );
    out.push_str(&render(&["clients", "aggregate MB/s", "scaling vs 1"], &rows));

    let c64 = measured.iter().find(|m| m.0 == 64).unwrap();
    let scaling = c64.1 / base;
    let pass = scaling >= 3.0;
    out.push_str(&format!("\nGATE aggregate_io clients64_scaling={} pass={pass}\n", f2(scaling)));

    println!("{out}");
    emit("aggregate_io", &out);
    emit_json(&measured, block_size, quick);
    out
}

/// Writes `results/aggregate_io.json` (CI uploads and shape-diffs it).
fn emit_json(measured: &[(usize, f64)], block_size: u64, quick: bool) {
    let base = measured[0].1;
    let mut sweeps = Vec::new();
    for &(n, aggregate) in measured {
        sweeps.push(format!(
            "    {{\"clients\": {n}, \"aggregate_mb_s\": {aggregate:.2}, \
             \"scaling_vs_1\": {:.3}}}",
            aggregate / base
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"aggregate_io\",\n  \"quick\": {quick},\n  \
         \"workers\": 4,\n  \"blocks_per_file\": {BLOCKS},\n  \"block_bytes\": {block_size},\n  \
         \"replication\": 2,\n  \"clients\": [\n{}\n  ]\n}}\n",
        sweeps.join(",\n")
    );
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join("aggregate_io.json"), json);
    }
}
