//! Metadata microbenchmark: the master contention yardstick. ROADMAP
//! item 1 sharded the former single `RwLock<Inner>` into path-striped
//! namespace shards with a group-commit edit log; this experiment is the
//! before/after measurement. An in-process [`Master`] is preloaded with a
//! large namespace (1M files in the full run), then 1/4/16 concurrent
//! client threads sweep a fixed create/stat/list/delete mix against it,
//! and a second sweep holds 16 clients while varying the shard count
//! (1/4/8) to isolate the sharding win. Per-op throughput and latency
//! quantiles come from the master's own `master_meta_op_us` histograms
//! (bucket deltas per sweep, the same series `octofs-remote perf` reads),
//! so the bench exercises the observability path it reports through. The
//! gate requires a minimum aggregate ops/sec *and* that ≥90% of measured
//! operation time is attributed to the named segments (lock wait, work
//! under lock, edit-log append) — i.e. the instrumentation accounts for
//! where the time went. Mirrors `results/metadata.{txt,json}`.

use std::time::Instant;

use octopus_common::metrics::{HistogramSample, MetricsSnapshot};
use octopus_common::{
    ClusterConfig, MediaId, MediaStats, RackId, ReplicationVector, TierId, WorkerId, MB,
};
use octopus_master::Master;

use crate::table::{emit, f1, f2, render};

/// Concurrency levels swept (client threads issuing metadata ops).
const CLIENTS: [usize; 3] = [1, 4, 16];

/// Files per preloaded directory.
const FILES_PER_DIR: usize = 1_000;

/// Gate floor on the best sweep's aggregate metadata ops/sec. The
/// sharded master sustains ~190k on the single-core CI container (where
/// no parallel speedup is physically observable — thread counts only add
/// scheduling overhead); the floor is set at under half of that so only a
/// real regression (or a lock pathology) trips it, not machine variance.
/// Raised from the pre-shard 25k floor.
const MIN_OPS_PER_SEC: f64 = 80_000.0;

/// Gate floor on segment attribution: the fraction of total measured op
/// time explained by lock-wait + work-under-lock + edit-log segments.
const MIN_ATTRIBUTION: f64 = 0.90;

/// The operation labels the mixed workload drives, in table order.
const OPS: [&str; 5] = ["create", "complete", "stat", "list", "delete"];

/// Shard counts swept at the top concurrency level.
const SHARDS: [usize; 3] = [1, 4, 8];

/// The default shard count (`ClusterConfig::test_cluster`), used for the
/// client sweep and reused as the matching row of the shard sweep.
const DEFAULT_SHARDS: usize = 8;

/// Full run (the `run_all` entry): 1M preloaded files.
pub fn run() -> String {
    run_mode(false)
}

/// CI smoke: 100k preloaded files, shorter sweeps, same pipeline and gate.
pub fn run_quick() -> String {
    run_mode(true)
}

fn boot_master(shards: usize) -> Master {
    let mut config = ClusterConfig::test_cluster(4, 64 * MB, MB);
    config.master_shards = shards;
    let master = Master::new(config).unwrap();
    for w in 0..4u32 {
        let rack = RackId((w % 2) as u16);
        master.register_worker(WorkerId(w), rack, 1e9, 0);
        let media: Vec<MediaStats> = (0..3u8)
            .map(|t| MediaStats {
                media: MediaId(w * 3 + t as u32),
                worker: WorkerId(w),
                rack,
                tier: TierId(t),
                capacity: 64 * MB,
                remaining: 64 * MB,
                nr_conn: 0,
                write_thru: [1900.0, 340.0, 126.0][t as usize] * 1048576.0,
                read_thru: [3200.0, 420.0, 177.0][t as usize] * 1048576.0,
            })
            .collect();
        master.heartbeat(WorkerId(w), media, 0, 0).unwrap();
    }
    master
}

/// The delta of one `(name, op)` histogram between two snapshots, as a
/// standalone sample so the usual quantile/mean helpers apply to just the
/// observations recorded in between.
fn hist_delta(
    before: &MetricsSnapshot,
    after: &MetricsSnapshot,
    name: &str,
    op: &str,
) -> Option<HistogramSample> {
    let find = |s: &MetricsSnapshot| {
        s.histograms.iter().find(|h| h.name == name && h.labels.op.as_deref() == Some(op)).cloned()
    };
    let a = find(after)?;
    let Some(b) = find(before) else { return Some(a) };
    let buckets = a.buckets.iter().zip(&b.buckets).map(|(x, y)| x.saturating_sub(*y)).collect();
    Some(HistogramSample {
        name: a.name,
        labels: a.labels,
        buckets,
        sum: a.sum.saturating_sub(b.sum),
        count: a.count.saturating_sub(b.count),
    })
}

/// Sum of one segment histogram's `sum` across the workload ops.
fn segment_sum(before: &MetricsSnapshot, after: &MetricsSnapshot, name: &str) -> u64 {
    OPS.iter().filter_map(|op| hist_delta(before, after, name, op)).map(|h| h.sum).sum()
}

struct SweepResult {
    clients: usize,
    wall_s: f64,
    agg_ops_per_sec: f64,
    attribution: f64,
    /// `(op, count, ops/sec, p50 µs, p99 µs, mean µs)` per workload op.
    ops: Vec<(String, u64, f64, u64, u64, f64)>,
}

/// One concurrency sweep: `clients` threads each running `iters` mixed
/// iterations against disjoint `/bench/c{clients}/t{thread}` directories,
/// with stat/list traffic also hitting the shared preloaded namespace.
fn sweep(master: &Master, clients: usize, iters: usize, preload_files: usize) -> SweepResult {
    let rv = ReplicationVector::from_replication_factor(1);
    for t in 0..clients {
        master.mkdir(&format!("/bench/c{clients}/t{t}")).unwrap();
    }
    let before = master.metrics().snapshot();
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..clients {
            s.spawn(move || {
                let dir = format!("/bench/c{clients}/t{t}");
                // Thread-local LCG: cheap deterministic preload indices.
                let mut state = (clients as u64) << 32 | (t as u64 + 1);
                let mut next = || {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 33) as usize
                };
                for i in 0..iters {
                    let own = format!("{dir}/f{i}");
                    master.create_file(&own, rv, None).unwrap();
                    master.complete_file(&own).unwrap();
                    master.status(&own).unwrap();
                    let p = next() % preload_files;
                    master
                        .status(&format!("/p/d{}/f{}", p / FILES_PER_DIR, p % FILES_PER_DIR))
                        .unwrap();
                    if i % 16 == 0 {
                        master.list(&format!("/p/d{}", p / FILES_PER_DIR)).unwrap();
                    } else {
                        master.list(&dir).unwrap();
                    }
                    master.delete(&own, false).unwrap();
                }
            });
        }
    });
    let wall_s = start.elapsed().as_secs_f64();
    let after = master.metrics().snapshot();

    let mut ops = Vec::new();
    let mut total_count = 0u64;
    for op in OPS {
        let h = hist_delta(&before, &after, "master_meta_op_us", op)
            .unwrap_or_else(|| panic!("no master_meta_op_us sample for op={op}"));
        total_count += h.count;
        ops.push((
            op.to_string(),
            h.count,
            h.count as f64 / wall_s,
            h.quantile_us(0.50),
            h.quantile_us(0.99),
            h.mean_us(),
        ));
    }
    let total_us = segment_sum(&before, &after, "master_meta_op_us");
    let explained = segment_sum(&before, &after, "master_meta_op_lock_wait_us")
        + segment_sum(&before, &after, "master_meta_op_work_us")
        + segment_sum(&before, &after, "master_meta_op_log_us");
    SweepResult {
        clients,
        wall_s,
        agg_ops_per_sec: total_count as f64 / wall_s,
        attribution: if total_us == 0 { 0.0 } else { explained as f64 / total_us as f64 },
        ops,
    }
}

fn preload(master: &Master, preload_files: usize) -> f64 {
    let rv = ReplicationVector::from_replication_factor(1);
    let t0 = Instant::now();
    for d in 0..preload_files.div_ceil(FILES_PER_DIR) {
        master.mkdir(&format!("/p/d{d}")).unwrap();
    }
    for i in 0..preload_files {
        let path = format!("/p/d{}/f{}", i / FILES_PER_DIR, i % FILES_PER_DIR);
        master.create_file(&path, rv, None).unwrap();
        master.complete_file(&path).unwrap();
    }
    t0.elapsed().as_secs_f64()
}

fn run_mode(quick: bool) -> String {
    let preload_files: usize = if quick { 100_000 } else { 1_000_000 };
    let iters = if quick { 2_000 } else { 10_000 };
    let master = boot_master(DEFAULT_SHARDS);
    let preload_s = preload(&master, preload_files);

    let sweeps: Vec<SweepResult> =
        CLIENTS.iter().map(|&c| sweep(&master, c, iters, preload_files)).collect();

    // Shard-count sweep: hold the heaviest concurrency (16 clients) and
    // vary `master_shards` on fresh, identically-preloaded masters. The
    // default-shard row reuses the client sweep above (same workload).
    let shard_sweeps: Vec<(usize, SweepResult)> = SHARDS
        .iter()
        .map(|&n| {
            if n == DEFAULT_SHARDS {
                let s = sweeps.last().unwrap();
                return (
                    n,
                    SweepResult {
                        clients: s.clients,
                        wall_s: s.wall_s,
                        agg_ops_per_sec: s.agg_ops_per_sec,
                        attribution: s.attribution,
                        ops: s.ops.clone(),
                    },
                );
            }
            let m = boot_master(n);
            preload(&m, preload_files);
            (n, sweep(&m, *CLIENTS.last().unwrap(), iters, preload_files))
        })
        .collect();

    let mut rows = Vec::new();
    for s in &sweeps {
        for (op, count, rate, p50, p99, mean) in &s.ops {
            rows.push(vec![
                s.clients.to_string(),
                op.clone(),
                count.to_string(),
                format!("{rate:.0}"),
                p50.to_string(),
                p99.to_string(),
                f1(*mean),
            ]);
        }
        rows.push(vec![
            s.clients.to_string(),
            "ALL".into(),
            String::new(),
            format!("{:.0}", s.agg_ops_per_sec),
            String::new(),
            String::new(),
            String::new(),
        ]);
    }

    let mut out = format!(
        "Master metadata microbenchmark: {preload_files} preloaded files \
         ({FILES_PER_DIR}/dir),\nthen {iters} mixed \
         create/complete/stat/stat/list/delete iterations per client\nthread at \
         concurrency {CLIENTS:?}. Latencies from the master's own\n\
         master_meta_op_us histograms (sub-ms buckets), per-sweep deltas.\n\n\
         preload: {preload_files} files in {preload_s:.1}s \
         ({:.0} files/s, create+complete)\n\n",
        preload_files as f64 / preload_s
    );
    out.push_str(&render(
        &["clients", "op", "count", "ops/sec", "p50_us", "p99_us", "mean_us"],
        &rows,
    ));

    // Shard sweep table: the sharding win in isolation.
    let mut srows = Vec::new();
    for (n, s) in &shard_sweeps {
        srows.push(vec![
            n.to_string(),
            s.clients.to_string(),
            format!("{:.0}", s.agg_ops_per_sec),
            f2(s.attribution),
        ]);
    }
    out.push_str("\nshard sweep (top concurrency, fresh identically-preloaded masters):\n");
    out.push_str(&render(&["shards", "clients", "ops/sec", "attribution"], &srows));

    // Lock table: every instrumented master lock as the default-shard
    // sweeps saw it (cumulative over the whole run), busiest waits first.
    // Per-shard labels (master.shard0..N, master.blocks0..N) expose skew.
    let snap = master.metrics().snapshot();
    let mut locks: Vec<(String, String)> = snap
        .counters
        .iter()
        .filter(|c| c.name == "lock_acquire_total" && c.value > 0)
        .filter_map(|c| Some((c.labels.op.clone()?, c.labels.mode.clone()?)))
        .collect();
    locks.sort();
    locks.dedup();
    let mut lock_rows = Vec::new();
    for (lock, mode) in &locks {
        let by = |name: &str| {
            snap.counter_where(name, |l| {
                l.op.as_deref() == Some(lock) && l.mode.as_deref() == Some(mode)
            })
        };
        let h = |name: &str| {
            snap.histograms
                .iter()
                .find(|s| {
                    s.name == name
                        && s.labels.op.as_deref() == Some(lock)
                        && s.labels.mode.as_deref() == Some(mode)
                })
                .cloned()
        };
        let wait = h("lock_wait_us");
        let hold = h("lock_hold_us");
        let wait_us = wait.as_ref().map_or(0, |s| s.sum);
        lock_rows.push((
            wait_us,
            vec![
                lock.clone(),
                mode.to_string(),
                by("lock_acquire_total").to_string(),
                by("lock_contended_total").to_string(),
                wait.as_ref().map_or(0, |s| s.quantile_us(0.99)).to_string(),
                wait_us.to_string(),
                hold.as_ref().map_or(0, |s| s.quantile_us(0.99)).to_string(),
                hold.as_ref().map_or(0, |s| s.sum).to_string(),
            ],
        ));
    }
    lock_rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let lock_rows: Vec<Vec<String>> = lock_rows.into_iter().map(|(_, r)| r).collect();
    out.push_str("\nmaster locks (cumulative, busiest wait first):\n");
    out.push_str(&render(
        &["lock", "mode", "acquires", "contended", "wait_p99", "wait_us", "hold_p99", "hold_us"],
        &lock_rows,
    ));

    let best = sweeps.iter().map(|s| s.agg_ops_per_sec).fold(0.0, f64::max);
    let min_attr = sweeps.iter().map(|s| s.attribution).fold(1.0, f64::min);
    let pass = best >= MIN_OPS_PER_SEC && min_attr >= MIN_ATTRIBUTION;
    out.push_str(&format!(
        "\nGATE metadata best_ops_per_sec={best:.0} floor={MIN_OPS_PER_SEC:.0} \
         attribution={} pass={pass}\n",
        f2(min_attr)
    ));

    emit("metadata", &out);
    emit_json(&sweeps, &shard_sweeps, preload_files, preload_s, best, min_attr, pass, quick);
    out
}

/// Writes `results/metadata.json` (CI uploads and diffs it across runs).
#[allow(clippy::too_many_arguments)]
fn emit_json(
    sweeps: &[SweepResult],
    shard_sweeps: &[(usize, SweepResult)],
    preload_files: usize,
    preload_s: f64,
    best: f64,
    attribution: f64,
    pass: bool,
    quick: bool,
) {
    let mut entries = Vec::new();
    for s in sweeps {
        let ops: Vec<String> = s
            .ops
            .iter()
            .map(|(op, count, rate, p50, p99, mean)| {
                format!(
                    "        {{\"op\": \"{op}\", \"count\": {count}, \"ops_per_sec\": {rate:.0}, \
                     \"p50_us\": {p50}, \"p99_us\": {p99}, \"mean_us\": {mean:.1}}}"
                )
            })
            .collect();
        entries.push(format!(
            "    {{\"clients\": {}, \"wall_s\": {:.3}, \"agg_ops_per_sec\": {:.0}, \
             \"attribution\": {:.4}, \"ops\": [\n{}\n      ]}}",
            s.clients,
            s.wall_s,
            s.agg_ops_per_sec,
            s.attribution,
            ops.join(",\n")
        ));
    }
    let shard_entries: Vec<String> = shard_sweeps
        .iter()
        .map(|(n, s)| {
            format!(
                "    {{\"shards\": {n}, \"clients\": {}, \"agg_ops_per_sec\": {:.0}, \
                 \"attribution\": {:.4}}}",
                s.clients, s.agg_ops_per_sec, s.attribution
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"metadata\",\n  \"quick\": {quick},\n  \
         \"preload_files\": {preload_files},\n  \"preload_s\": {preload_s:.1},\n  \
         \"best_ops_per_sec\": {best:.0},\n  \"min_ops_per_sec\": {MIN_OPS_PER_SEC:.0},\n  \
         \"attribution\": {attribution:.4},\n  \"pass\": {pass},\n  \"sweeps\": [\n{}\n  ],\n  \
         \"shard_sweeps\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
        shard_entries.join(",\n")
    );
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join("metadata.json"), json);
    }
}
