//! Networked-cluster observability run: drives a mixed read/write
//! workload (with injected response faults) through a real TCP
//! deployment, then reports the cluster-wide metrics snapshot — the same
//! series an operator would scrape — and mirrors the full text exposition
//! to `results/net_metrics.txt`.

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, MB};
use octopus_core::net::{faults, FaultAction, NetCluster};

use crate::table::{emit, render};

const FILES: u64 = 8;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

/// Runs the workload and returns the report text.
pub fn run() -> String {
    let mut config = ClusterConfig::test_cluster(4, 256 * MB, MB);
    config.heartbeat_ms = 25;
    let cluster = NetCluster::start(config).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);

    client.mkdir("/bench").unwrap();
    let mut bytes = 0u64;
    for i in 0..FILES {
        let data = payload(2 * MB as usize + 17 * i as usize, i);
        bytes += data.len() as u64;
        let rv = if i % 2 == 0 {
            ReplicationVector::from_replication_factor(3)
        } else {
            ReplicationVector::msh(1, 0, 2)
        };
        client.write_file(&format!("/bench/{i}"), &data, rv).unwrap();
    }
    // A couple of dropped replies: exercised retry counters show up in the
    // snapshot alongside the happy-path series.
    faults::inject(cluster.master_addr(), FaultAction::DropConnection);
    faults::inject(cluster.master_addr(), FaultAction::DropConnection);
    for i in 0..FILES {
        let read = client.read_file(&format!("/bench/{i}")).unwrap();
        assert!(!read.is_empty());
    }
    faults::clear(cluster.master_addr());
    let scrub = cluster.run_scrub_round().unwrap();
    let repl = cluster.run_replication_round().unwrap();

    let snap = cluster.metrics_snapshot().unwrap();
    let rows = vec![
        vec![
            "client_write_bytes_total".into(),
            snap.counter("client_write_bytes_total").to_string(),
        ],
        vec!["client_read_bytes_total".into(), snap.counter("client_read_bytes_total").to_string()],
        vec![
            "worker_write_bytes_total".into(),
            snap.counter("worker_write_bytes_total").to_string(),
        ],
        vec!["worker_read_bytes_total".into(), snap.counter("worker_read_bytes_total").to_string()],
        vec![
            "rpc_client_requests_total".into(),
            snap.counter("rpc_client_requests_total").to_string(),
        ],
        vec![
            "rpc_client_retries_total".into(),
            snap.counter("rpc_client_retries_total").to_string(),
        ],
        vec!["master_requests_total".into(), snap.counter("master_requests_total").to_string()],
        vec!["master_live_workers".into(), snap.gauge("master_live_workers").to_string()],
        vec![
            "scrub corrupt / unreachable".into(),
            format!("{} / {}", scrub.corrupt_total(), scrub.unreachable().len()),
        ],
        vec!["replication tasks attempted".into(), repl.attempted.to_string()],
    ];
    let mut out = String::from("Cluster-wide metrics after a mixed workload (4 workers, TCP):\n");
    out.push_str(&render(&["series", "value"], &rows));
    out.push_str(&format!(
        "\nworkload wrote {bytes} bytes across {FILES} files; full exposition below.\n\n"
    ));
    out.push_str(&snap.render_text());

    assert!(snap.counter("client_write_bytes_total") >= bytes);
    assert!(snap.counter("rpc_client_retries_total") >= 2);

    println!("{out}");
    emit("net_metrics", &out);
    out
}
