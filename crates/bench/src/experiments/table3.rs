//! Table 3: HDFS vs OctopusFS namespace operations per second per worker
//! (§7.4), via the S-Live-style stress generator against the *real*
//! master (wall-clock measurement, no simulation).
//!
//! The "HDFS" configuration runs the master with the HDFS-compatible
//! policies and plain replication factors (vectors with only `U` set); the
//! OctopusFS configuration uses the MOOP policy and full vectors. The
//! paper's claim is parity: the tier bookkeeping adds <1% overhead.

use octopus_common::config::{PlacementPolicyKind, RetrievalPolicyKind};
use octopus_common::{ClusterConfig, ReplicationVector};

use crate::slive::{boot_master, run_slive};
use crate::table::{emit, f1, render};

const OPS: usize = 5_000;
const REPEATS: usize = 6;

fn mean_sem(samples: &[f64]) -> (f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if samples.len() < 2 {
        return (mean, 0.0);
    }
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, (var / n).sqrt())
}

/// Runs the experiment and returns the report text. As in the paper the
/// workload is repeated four times and the mean ± standard error of the
/// mean is reported; runs of the two configurations are interleaved to
/// decorrelate machine noise.
pub fn run() -> String {
    let mut hdfs_samples: Vec<Vec<f64>> = vec![Vec::new(); 6];
    let mut octo_samples: Vec<Vec<f64>> = vec![Vec::new(); 6];
    let mut names: Vec<&'static str> = Vec::new();
    let run_hdfs = || {
        let mut hdfs_cfg = ClusterConfig::paper_cluster();
        hdfs_cfg.policy.placement = PlacementPolicyKind::HdfsHddOnly;
        hdfs_cfg.policy.retrieval = RetrievalPolicyKind::HdfsLocality;
        let hdfs = boot_master(hdfs_cfg).unwrap();
        run_slive(&hdfs, OPS, ReplicationVector::from_replication_factor(3)).unwrap()
    };
    let run_octo = || {
        let octo = boot_master(ClusterConfig::paper_cluster()).unwrap();
        run_slive(&octo, OPS, ReplicationVector::msh(1, 1, 1)).unwrap()
    };

    // Warm-up round (discarded): stabilizes the allocator and caches.
    let _ = run_hdfs();
    let _ = run_octo();

    for rep in 0..REPEATS {
        // Alternate execution order to decorrelate machine drift.
        let (hdfs_rates, octo_rates) = if rep % 2 == 0 {
            let h = run_hdfs();
            let o = run_octo();
            (h, o)
        } else {
            let o = run_octo();
            let h = run_hdfs();
            (h, o)
        };

        names = hdfs_rates.rows.iter().map(|(n, _)| *n).collect();
        for (i, (_, r)) in hdfs_rates.rows.iter().enumerate() {
            hdfs_samples[i].push(*r);
        }
        for (i, (_, r)) in octo_rates.rows.iter().enumerate() {
            octo_samples[i].push(*r);
        }
    }

    let mut rows = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let (hm, hs) = mean_sem(&hdfs_samples[i]);
        let (om, os) = mean_sem(&octo_samples[i]);
        let overhead = (hm / om - 1.0) * 100.0;
        rows.push(vec![
            name.to_string(),
            format!("{}±{}", f1(hm), f1(hs)),
            format!("{}±{}", f1(om), f1(os)),
            format!("{overhead:+.1}%"),
        ]);
    }
    let out = format!(
        "Table 3 — namespace operations per second per worker\n\
         ({OPS} ops each, {REPEATS} repetitions, mean ± SEM, wall-clock against the\n\
         real master; positive overhead = OctopusFS slower)\n\n{}",
        render(&["Operation", "HDFS", "OctopusFS", "overhead"], &rows)
    );
    emit("table3", &out);
    out
}
