//! Distributed-tracing run: drives a faulted mixed workload through a
//! real TCP deployment, assembles end-to-end traces from every node's
//! collector, and reports the top-k slowest requests with their
//! critical-path breakdowns. The full span set is dumped to
//! `results/traces/net_trace.jsonl`.
//!
//! The faults make the interesting structure appear: dropped master
//! replies surface as sibling `rpc.*` retry spans under one parent, and
//! corrupted worker payloads surface as sibling `client.read_replica`
//! failover spans — all stitched under the original request's trace id.

use std::time::Instant;

use octopus_common::{
    ClientLocation, ClusterConfig, ReplicationVector, Trace, TraceSnapshot, WorkerId, MB,
};
use octopus_core::net::{faults, FaultAction, NetCluster};

use crate::table::{emit, render};

const FILES: u64 = 6;
const TOP_K: usize = 3;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

/// Whether a trace contains ≥2 same-named sibling spans whose name starts
/// with `prefix` (a retry or failover fanned out under one parent).
fn has_siblings(trace: &Trace, prefix: &str) -> bool {
    for s in &trace.spans {
        if !s.name.starts_with(prefix) {
            continue;
        }
        let twins = trace
            .spans
            .iter()
            .filter(|t| t.name == s.name && t.parent_span == s.parent_span)
            .count();
        if twins >= 2 {
            return true;
        }
    }
    false
}

/// Runs the workload and returns the report text.
pub fn run() -> String {
    let mut config = ClusterConfig::test_cluster(4, 256 * MB, MB);
    config.heartbeat_ms = 25;
    let cluster = NetCluster::start(config).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);

    client.mkdir("/trace").unwrap();
    // Measured wall time per request, keyed by (op, path): the acceptance
    // check compares each trace's attributed critical path against it.
    let mut walls: Vec<(&'static str, String, u64)> = Vec::new();
    for i in 0..FILES {
        let path = format!("/trace/{i}");
        let data = payload(2 * MB as usize + 13 * i as usize, i);
        let rv = if i % 2 == 0 {
            ReplicationVector::from_replication_factor(3)
        } else {
            ReplicationVector::msh(1, 0, 2)
        };
        let t = Instant::now();
        client.write_file(&path, &data, rv).unwrap();
        walls.push(("write", path, t.elapsed().as_micros() as u64));
    }

    // Faults: a burst of dropped master replies forces visible `rpc.*`
    // retry siblings (worker heartbeats consume some of the burst, so it
    // must outpace them); corrupted payloads on two of the four workers
    // force checksummed read failover to another replica (every file
    // keeps 3 replicas, so at least one clean copy always remains).
    for _ in 0..8 {
        faults::inject(cluster.master_addr(), FaultAction::DropConnection);
    }
    for w in 0..2 {
        if let Some(addr) = cluster.worker_addr(WorkerId(w)) {
            faults::inject(addr, FaultAction::CorruptPayload);
        }
    }
    for i in 0..FILES {
        let path = format!("/trace/{i}");
        let t = Instant::now();
        let read = client.read_file(&path).unwrap();
        walls.push(("read", path, t.elapsed().as_micros() as u64));
        assert!(!read.is_empty());
    }
    faults::clear(cluster.master_addr());
    for w in 0..2 {
        if let Some(addr) = cluster.worker_addr(WorkerId(w)) {
            faults::clear(addr);
        }
    }

    // Assemble: client collector + master + every worker over the Trace
    // RPC, grouped into per-request trees.
    let snap = client.cluster_trace_snapshot().unwrap();
    let mut traces = snap.traces();
    traces.retain(|t| t.root().name.starts_with("client."));
    traces.sort_by_key(|t| std::cmp::Reverse(t.duration_us()));

    let mut out = String::from("End-to-end traces of a faulted mixed workload (4 workers, TCP):\n");
    let rows: Vec<Vec<String>> = traces
        .iter()
        .map(|t| {
            let root = t.root();
            vec![
                root.name.clone(),
                root.annotation("path").unwrap_or("-").to_string(),
                format!("{}", t.trace_id),
                t.duration_us().to_string(),
                t.spans.len().to_string(),
                t.nodes().len().to_string(),
            ]
        })
        .collect();
    out.push_str(&render(&["op", "path", "trace", "total µs", "spans", "nodes"], &rows));

    out.push_str(&format!("\nTop {TOP_K} slowest requests, critical paths:\n\n"));
    for t in traces.iter().take(TOP_K) {
        out.push_str(&t.critical_path().render());
        out.push('\n');
    }

    // Acceptance: ≥1 trace spans client + master + ≥2 distinct workers.
    let wide = traces
        .iter()
        .find(|t| {
            let nodes = t.nodes();
            nodes.contains("client")
                && nodes.contains("master")
                && nodes.iter().filter(|n| n.starts_with("worker-")).count() >= 2
        })
        .expect("no trace covering client, master, and >=2 workers");
    out.push_str(&format!("\nwidest trace {} touches nodes: {:?}\n", wide.trace_id, wide.nodes()));

    // Acceptance: the critical path is an exact partition of the request —
    // attributed segments sum to within 5% of the measured wall time.
    let mut checked = 0;
    for t in &traces {
        let root = t.root();
        let Some(path) = root.annotation("path") else { continue };
        let op = root.name.strip_prefix("client.").and_then(|n| n.strip_suffix("_file"));
        let Some(op) = op else { continue };
        let Some((_, _, wall)) = walls.iter().find(|(o, p, _)| *o == op && p == path) else {
            continue;
        };
        let attributed = t.critical_path().attributed_us();
        let diff = wall.abs_diff(attributed);
        assert!(
            diff * 20 <= *wall,
            "critical path of {op} {path}: attributed {attributed}µs vs wall {wall}µs"
        );
        checked += 1;
    }
    assert!(checked > 0, "no trace matched a measured request");

    // Acceptance: retries and failover appear as sibling spans inside the
    // original request's trace.
    let retried = traces.iter().filter(|t| has_siblings(t, "rpc.")).count();
    let failovers = traces.iter().filter(|t| has_siblings(t, "client.read_replica")).count();
    assert!(retried >= 1, "dropped master replies produced no retry siblings");
    assert!(failovers >= 1, "corrupted payloads produced no failover siblings");
    out.push_str(&format!(
        "{checked} traces matched measured wall times within 5%; \
         {retried} with rpc retry siblings; {failovers} with read-failover siblings\n"
    ));

    std::fs::create_dir_all("results/traces").unwrap();
    let dump = TraceSnapshot { spans: snap.spans.clone() };
    std::fs::write("results/traces/net_trace.jsonl", dump.to_jsonl()).unwrap();
    out.push_str(&format!(
        "dumped {} spans across {} traces to results/traces/net_trace.jsonl\n",
        snap.spans.len(),
        traces.len()
    ));

    println!("{out}");
    emit("net_trace", &out);
    out
}
