//! Figure 4: remaining capacity percent per storage tier over time for the
//! eight placement policies (§7.2). Shares the 40 GB / d=27 write engine
//! with Figure 3 and reports the per-tier capacity trajectories.

use crate::experiments::fig3::run_all_policies;
use crate::table::{emit, f1, render};

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let runs = run_all_policies();
    let mut out = String::from(
        "Figure 4 — remaining capacity percent per tier during the 40 GB write (§7.2)\n\n",
    );
    for r in &runs {
        let rows: Vec<Vec<String>> = r
            .capacity_series
            .iter()
            .map(|(t, caps)| vec![f1(*t), f1(caps[0]), f1(caps[1]), f1(caps[2])])
            .collect();
        out.push_str(&format!(
            "{}:\n{}\n",
            r.label,
            render(&["t(s)", "Memory %", "SSD %", "HDD %"], &rows)
        ));
    }
    emit("fig4", &out);
    out
}
