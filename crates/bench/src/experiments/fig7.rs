//! Figure 7: normalized execution time of the four Pegasus workloads with
//! the controllability optimizations (§7.6).

use octopus_compute::{pegasus_workloads, run_pegasus, PegasusMode};

use crate::table::{emit, f2, render};

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut rows = Vec::new();
    for w in pegasus_workloads() {
        let base = run_pegasus(&w, PegasusMode::Hdfs).unwrap();
        let mut row = vec![w.name.to_string()];
        for mode in PegasusMode::ALL {
            let t = run_pegasus(&w, mode).unwrap();
            row.push(f2(t / base));
        }
        rows.push(row);
    }
    let headers: Vec<&str> =
        std::iter::once("Workload").chain(PegasusMode::ALL.iter().map(|m| m.label())).collect();
    let out = format!(
        "Figure 7 — normalized execution time of Pegasus workloads over HDFS\n\
         (lower is better; 1.00 = unmodified Pegasus on HDFS)\n\n{}",
        render(&headers, &rows)
    );
    emit("fig7", &out);
    out
}
