//! Table 2: average write and read throughput (MB/s) per storage media.
//!
//! In the paper these are measured by the workers' startup probe against
//! real devices; here the simulator's device model is the ground truth, so
//! this experiment verifies the calibration end to end: a node-local,
//! single-replica write (read) of one file exercises exactly one device
//! and must reproduce the configured rate.

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, WorkerId, MB};
use octopus_core::SimCluster;

use crate::table::{emit, f1, render};

/// Paper values for the three media types (write, read), MB/s.
pub const PAPER: [(&str, f64, f64); 3] =
    [("Memory", 1897.4, 3224.8), ("SSD", 340.6, 419.5), ("HDD", 126.3, 177.1)];

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut rows = Vec::new();
    for (i, (name, paper_w, paper_r)) in PAPER.iter().enumerate() {
        let mut config = ClusterConfig::paper_cluster();
        config.block_size = 64 * MB;
        let mut sim = SimCluster::new(config).unwrap();
        let mut rv = ReplicationVector::EMPTY;
        rv = rv.with_tier(octopus_common::TierId(i as u8), 1);
        let client = ClientLocation::OnWorker(WorkerId(0));
        sim.submit_write("/probe", 512 * MB, rv, client).unwrap();
        let w = sim.run_to_completion().last().unwrap().throughput_mbps();
        sim.submit_read("/probe", client).unwrap();
        let r = sim.run_to_completion().last().unwrap().throughput_mbps();
        rows.push(vec![name.to_string(), f1(w), f1(*paper_w), f1(r), f1(*paper_r)]);
    }
    let body = render(&["Media", "Write MB/s", "(paper)", "Read MB/s", "(paper)"], &rows);
    let out = format!(
        "Table 2 — average write/read throughput per storage media\n\
         (node-local single-replica transfers against the calibrated device model)\n\n{body}"
    );
    emit("table2", &out);
    out
}
