//! One module per paper table/figure; each exposes `run() -> String`
//! which executes the experiment, prints the result, and mirrors it to
//! `results/<id>.txt`. The `src/bin/exp_*` binaries are thin wrappers;
//! `run_all` regenerates everything for EXPERIMENTS.md.

pub mod ablation;
pub mod aggregate_io;
pub mod autotier;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod heat;
pub mod metadata;
pub mod net_metrics;
pub mod net_trace;
pub mod parallel_io;
pub mod scalability;
pub mod table2;
pub mod table3;
pub mod usecase_sched;

/// The six replication vectors of Figure 2, with their paper labels.
pub fn fig2_vectors() -> Vec<(&'static str, octopus_common::ReplicationVector)> {
    use octopus_common::ReplicationVector as RV;
    vec![
        ("<3,0,0>", RV::msh(3, 0, 0)),
        ("<0,3,0>", RV::msh(0, 3, 0)),
        ("<0,0,3>", RV::msh(0, 0, 3)),
        ("<1,1,1>", RV::msh(1, 1, 1)),
        ("<1,0,2>", RV::msh(1, 0, 2)),
        ("<0,1,2>", RV::msh(0, 1, 2)),
    ]
}

/// The degrees of parallelism swept in Figures 2 and 5 (the paper names
/// d = 27 explicitly; the five-point sweep brackets it).
pub const DEGREES: [u32; 5] = [1, 3, 9, 27, 54];

/// The eight §7.2 placement policies, figure order.
pub fn fig3_policies() -> Vec<octopus_common::config::PlacementPolicyKind> {
    use octopus_common::config::PlacementPolicyKind as P;
    vec![
        P::ThroughputMax,
        P::LoadBalancing,
        P::FaultTolerance,
        P::DataBalancing,
        P::Moop,
        P::RuleBased,
        P::HdfsHddOnly,
        P::HdfsTierBlind,
    ]
}

/// Display name of a placement policy kind.
pub fn policy_label(kind: octopus_common::config::PlacementPolicyKind) -> &'static str {
    use octopus_common::config::PlacementPolicyKind as P;
    match kind {
        P::Moop => "MOOP",
        P::DataBalancing => "DB",
        P::LoadBalancing => "LB",
        P::FaultTolerance => "FT",
        P::ThroughputMax => "TM",
        P::RuleBased => "Rule-based",
        P::HdfsHddOnly => "Original HDFS",
        P::HdfsTierBlind => "HDFS with SSD",
        P::MoopDropObjective(0) => "MOOP-DB",
        P::MoopDropObjective(1) => "MOOP-LB",
        P::MoopDropObjective(2) => "MOOP-FT",
        P::MoopDropObjective(_) => "MOOP-TM",
    }
}
