//! Auto-tiering experiment: a shifting working set over HDD-pinned files
//! on a real TCP deployment under device-throughput emulation. Each phase
//! hammers a different pair of files; the *auto* run lets the migration
//! round (EWMA classifier → vector edit → paced §5 monitor copies) promote
//! the hot pair into the memory tier between the warm-up and the measured
//! reads, while the *static* run leaves every file where the initial
//! ⟨0,0,1⟩ placement put it. The gate requires auto-tiering to beat static
//! placement ≥1.3× on total end-to-end phase time (warm-up, telemetry
//! drain, and migration cost all included — the speedup must survive the
//! copies it pays for). Mirrors a text table to `results/autotier.txt` and
//! a machine-readable summary to `results/autotier.json`.

use std::time::{Duration, Instant};

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, MB};
use octopus_core::NetCluster;
use octopus_master::AutoTierConfig;
use octopus_policies::EwmaThresholdClassifier;

use crate::table::{emit, f2, render};

/// Files per phase working set.
const WS: usize = 2;
/// Warm-up reads per working-set file per phase: enough touches to push
/// the file's EWMA preview (α·reads = 0.4·4 = 1.6) past the hot
/// threshold (1.0) before the migration round looks at it.
const WARM_READS: usize = 4;
/// Measured reads per working-set file per phase.
const TIMED_READS: usize = 12;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

/// Full run (the `run_all` entry): 3 phases over 6 files.
pub fn run() -> String {
    run_mode(false)
}

/// CI smoke: 2 phases over 4 files, same pipeline and gate line.
pub fn run_quick() -> String {
    run_mode(true)
}

fn run_mode(quick: bool) -> String {
    let phases = if quick { 2 } else { 3 };
    let (static_times, _) = run_workload(phases, false);
    let (auto_times, promoted) = run_workload(phases, true);

    let mut rows = Vec::new();
    for p in 0..phases {
        rows.push(vec![
            p.to_string(),
            format!("/f{}../f{}", p * WS, p * WS + WS - 1),
            f2(static_times[p]),
            f2(auto_times[p]),
            f2(static_times[p] / auto_times[p]),
        ]);
    }
    let static_total: f64 = static_times.iter().sum();
    let auto_total: f64 = auto_times.iter().sum();
    let speedup = static_total / auto_total;
    rows.push(vec!["total".into(), String::new(), f2(static_total), f2(auto_total), f2(speedup)]);

    let mut out = format!(
        "Auto-tiering vs static placement: shifting working set ({WS} files per\n\
         phase, {WARM_READS} warm-up + {TIMED_READS} measured reads each) over {phases} phases on a\n\
         4-worker TCP cluster with emulated device throughput. All files start\n\
         HDD-pinned <0,0,1>; the auto run inserts one paced migration round per\n\
         phase, the static run never migrates:\n\n"
    );
    out.push_str(&render(&["phase", "working set", "static s", "auto s", "speedup"], &rows));

    let pass = speedup >= 1.3 && promoted >= phases * WS;
    out.push_str(&format!(
        "\nGATE autotier speedup={} promoted={promoted} phases={phases} pass={pass}\n",
        f2(speedup)
    ));

    println!("{out}");
    emit("autotier", &out);
    emit_json(&static_times, &auto_times, speedup, promoted, quick);
    out
}

/// One full workload pass on a fresh cluster. Returns per-phase wall
/// times and (auto runs only) the number of promotions executed.
fn run_workload(phases: usize, auto: bool) -> (Vec<f64>, usize) {
    let mut config = ClusterConfig::test_cluster(4, 64 * MB, MB / 2);
    config.heartbeat_ms = 25;
    // Pace transfers at each tier's device throughput, scaled down 8x: on
    // loopback every medium is RAM, so without pacing both runs measure
    // memcpy and the tier move would be invisible. Under emulation the
    // memory:HDD read-rate gap (~18x) is what promotion buys.
    config.emulate_media_bps = true;
    for w in &mut config.workers {
        for m in &mut w.media {
            m.write_bps /= 8.0;
            m.read_bps /= 8.0;
        }
    }
    let cluster = NetCluster::start(config).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 11);
    for f in 0..phases * WS {
        client.write_file(&format!("/f{f}"), &data, ReplicationVector::msh(0, 0, 1)).unwrap();
    }

    let classifier = EwmaThresholdClassifier::default();
    let cfg = AutoTierConfig::default();
    let mut times = Vec::new();
    let mut promoted = 0;
    for p in 0..phases {
        let ws: Vec<String> = (0..WS).map(|i| format!("/f{}", p * WS + i)).collect();
        let t = Instant::now();
        for _ in 0..WARM_READS {
            for f in &ws {
                assert_eq!(client.read_file(f).unwrap(), data);
            }
        }
        // Let the warm-up touches ride a heartbeat into the master's EWMA
        // tracker; the same drain happens in both runs so the comparison
        // stays apples-to-apples.
        let deadline = Instant::now() + Duration::from_secs(10);
        while ws.iter().any(|f| client.heat(f).unwrap().score < 1.0) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        if auto {
            let round = cluster.run_migration_round(&classifier, &cfg).unwrap();
            promoted += round.promoted;
        }
        for _ in 0..TIMED_READS {
            for f in &ws {
                assert_eq!(client.read_file(f).unwrap(), data);
            }
        }
        times.push(t.elapsed().as_secs_f64());
    }
    (times, promoted)
}

/// Writes `results/autotier.json` (CI uploads and diffs it across runs).
fn emit_json(static_times: &[f64], auto_times: &[f64], speedup: f64, promoted: usize, quick: bool) {
    let mut points = Vec::new();
    for (p, (s, a)) in static_times.iter().zip(auto_times).enumerate() {
        points.push(format!(
            "    {{\"phase\": {p}, \"static_s\": {s:.4}, \"auto_s\": {a:.4}, \
             \"speedup\": {:.3}}}",
            s / a
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"autotier\",\n  \"quick\": {quick},\n  \"workers\": 4,\n  \
         \"ws_files\": {WS},\n  \"warm_reads\": {WARM_READS},\n  \
         \"timed_reads\": {TIMED_READS},\n  \"phases\": {},\n  \
         \"promoted\": {promoted},\n  \"speedup\": {speedup:.3},\n  \"points\": [\n{}\n  ]\n}}\n",
        static_times.len(),
        points.join(",\n")
    );
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join("autotier.json"), json);
    }
}
