//! Figure 3: average write (a) and read (b) throughput per worker over
//! time for the eight data placement policies (§7.2).
//!
//! DFSIO writes 40 GB with d = 27 and U = 3, then reads it back, under
//! each policy. Memory placement is enabled for the policy-driven
//! placements ("we enabled the use of the Memory tier for fairness" —
//! §7.2); the HDFS baselines never use memory by construction. Throughput
//! is sampled in fixed windows of virtual time; the per-worker value is
//! the cluster-aggregate goodput divided by the nine workers.

use octopus_common::config::PlacementPolicyKind;
use octopus_common::{ClusterConfig, ReplicationVector, GB, MB};
use octopus_core::{SimCluster, SimEvent};

use crate::experiments::{fig3_policies, policy_label};
use crate::table::{emit, f1, render};

const TOTAL_BYTES: u64 = 40 * GB;
const D: u32 = 27;
const SAMPLE_SECS: f64 = 10.0;

/// Cluster config for one policy, §7.2 settings.
pub fn config_for_policy(kind: PlacementPolicyKind) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cluster();
    c.policy.placement = kind;
    c.policy.memory_placement_enabled = true;
    c
}

/// A sampled time series plus the phase summary.
pub struct PolicyRun {
    /// Policy label.
    pub label: &'static str,
    /// `(time s, write MB/s per worker)` samples.
    pub write_series: Vec<(f64, f64)>,
    /// `(time s, read MB/s per worker)` samples.
    pub read_series: Vec<(f64, f64)>,
    /// Mean per-task write throughput (MB/s).
    pub write_mean: f64,
    /// Mean per-task read throughput (MB/s).
    pub read_mean: f64,
    /// Remaining-capacity percent per tier over time (for Figure 4):
    /// `(time s, [Memory %, SSD %, HDD %])`.
    pub capacity_series: Vec<(f64, [f64; 3])>,
}

fn tier_remaining_pct(sim: &SimCluster) -> [f64; 3] {
    let mut out = [0.0; 3];
    for report in sim.master().get_storage_tier_reports() {
        let idx = match report.name.as_str() {
            "Memory" => 0,
            "SSD" => 1,
            _ => 2,
        };
        out[idx] = report.stats.remaining_fraction() * 100.0;
    }
    out
}

/// Drives submitted jobs to completion, sampling goodput every
/// `SAMPLE_SECS` via `bytes_fn` (a monotone byte counter).
/// `(time, MB/s-per-worker)` samples.
type RateSeries = Vec<(f64, f64)>;
/// `(time, [Memory %, SSD %, HDD %])` samples.
type CapacitySeries = Vec<(f64, [f64; 3])>;

fn drive_sampled(
    sim: &mut SimCluster,
    workers: f64,
    read_phase: bool,
) -> (RateSeries, CapacitySeries) {
    let mut series = Vec::new();
    let mut caps = Vec::new();
    let mut last_bytes =
        if read_phase { sim.logical_bytes_read() } else { sim.logical_bytes_written() };
    let mut last_t = sim.now().as_secs_f64();
    sim.schedule_timer(SAMPLE_SECS, 1);
    while !sim.all_jobs_done() {
        match sim.next_sim_event() {
            Some(SimEvent::Timer(1)) => {
                let now = sim.now().as_secs_f64();
                let bytes =
                    if read_phase { sim.logical_bytes_read() } else { sim.logical_bytes_written() };
                let rate =
                    (bytes - last_bytes) as f64 / (now - last_t).max(1e-9) / MB as f64 / workers;
                series.push((now, rate));
                caps.push((now, tier_remaining_pct(sim)));
                last_bytes = bytes;
                last_t = now;
                if !sim.all_jobs_done() {
                    sim.schedule_timer(SAMPLE_SECS, 1);
                }
            }
            Some(_) => {}
            None => break,
        }
    }
    caps.push((sim.now().as_secs_f64(), tier_remaining_pct(sim)));
    (series, caps)
}

/// Runs the 40 GB write+read experiment for one policy.
pub fn run_policy(kind: PlacementPolicyKind) -> PolicyRun {
    run_config(config_for_policy(kind), policy_label(kind))
}

/// Runs the 40 GB write+read experiment for an arbitrary configuration
/// (shared with the ablation study).
pub fn run_config(config: octopus_common::ClusterConfig, label: &'static str) -> PolicyRun {
    let mut sim = SimCluster::new(config).unwrap();
    let workers = sim.master().snapshot().workers.len() as f64;
    let rv = ReplicationVector::from_replication_factor(3);

    // Write phase: submit all writers, then drive with sampling.
    sim.master().mkdir("/dfsio").unwrap();
    let n = workers as u32;
    let per_task = TOTAL_BYTES / D as u64;
    let mut paths = Vec::new();
    for i in 0..D {
        let path = format!("/dfsio/part-{i}");
        sim.submit_write(
            &path,
            per_task,
            rv,
            octopus_common::ClientLocation::OnWorker(octopus_common::WorkerId(i % n)),
        )
        .unwrap();
        paths.push(path);
    }
    let (write_series, capacity_series) = drive_sampled(&mut sim, workers, false);
    let write_reports = sim.reports();
    let write_mean =
        write_reports.iter().map(|r| r.throughput_mbps()).sum::<f64>() / write_reports.len() as f64;

    // Read phase.
    let read_start_jobs = sim.reports().len();
    for (i, path) in paths.iter().enumerate() {
        sim.submit_read(
            path,
            octopus_common::ClientLocation::OnWorker(octopus_common::WorkerId((i as u32 + 3) % n)),
        )
        .unwrap();
    }
    let (read_series, _) = drive_sampled(&mut sim, workers, true);
    let read_reports = &sim.reports()[read_start_jobs..];
    let read_mean = read_reports.iter().map(|r| r.throughput_mbps()).sum::<f64>()
        / read_reports.len().max(1) as f64;

    PolicyRun { label, write_series, read_series, write_mean, read_mean, capacity_series }
}

/// Runs all eight policies (shared with Figure 4).
pub fn run_all_policies() -> Vec<PolicyRun> {
    fig3_policies().into_iter().map(run_policy).collect()
}

fn series_table(runs: &[PolicyRun], write: bool) -> String {
    // Align series on sample index.
    let max_len = runs
        .iter()
        .map(|r| if write { r.write_series.len() } else { r.read_series.len() })
        .max()
        .unwrap_or(0);
    let mut headers = vec!["t(s)".to_string()];
    headers.extend(runs.iter().map(|r| r.label.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for i in 0..max_len {
        let t = (i as f64 + 1.0) * SAMPLE_SECS;
        let mut row = vec![f1(t)];
        for r in runs {
            let s = if write { &r.write_series } else { &r.read_series };
            row.push(s.get(i).map(|&(_, v)| f1(v)).unwrap_or_default());
        }
        rows.push(row);
    }
    render(&headers_ref, &rows)
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let runs = run_all_policies();
    let mut summary_rows = Vec::new();
    for r in &runs {
        summary_rows.push(vec![r.label.to_string(), f1(r.write_mean), f1(r.read_mean)]);
    }
    let moop = runs.iter().find(|r| r.label == "MOOP").unwrap();
    let hdfs = runs.iter().find(|r| r.label == "Original HDFS").unwrap();
    let hdfs_ssd = runs.iter().find(|r| r.label == "HDFS with SSD").unwrap();
    let rule = runs.iter().find(|r| r.label == "Rule-based").unwrap();
    let out = format!(
        "Figure 3 — DFSIO 40 GB, d=27, U=3, eight placement policies (§7.2)\n\n\
         Mean per-task throughput (MB/s):\n{}\n\
         MOOP vs Original HDFS:  write +{:.0}%  read {:.1}x\n\
         MOOP vs HDFS with SSD:  write +{:.0}%\n\
         MOOP vs Rule-based:     write +{:.0}%\n\n\
         Figure 3(a) — write throughput per worker over time (MB/s):\n{}\n\
         Figure 3(b) — read throughput per worker over time (MB/s):\n{}",
        render(&["Policy", "Write MB/s", "Read MB/s"], &summary_rows),
        (moop.write_mean / hdfs.write_mean - 1.0) * 100.0,
        moop.read_mean / hdfs.read_mean,
        (moop.write_mean / hdfs_ssd.write_mean - 1.0) * 100.0,
        (moop.write_mean / rule.write_mean - 1.0) * 100.0,
        series_table(&runs, true),
        series_table(&runs, false),
    );
    emit("fig3", &out);
    out
}
