//! Placement-policy scalability (paper §3.3): the greedy MOOP algorithm
//! is O(s·r²) — "essentially linear with respect to the number of storage
//! media". This experiment measures wall-clock placement latency across
//! cluster sizes and replica counts, plus the greedy solution's quality
//! against exhaustive enumeration on a small cluster.

use std::time::Instant;

use octopus_common::config::PolicyConfig;
use octopus_common::{ClientLocation, MediaStats};
use octopus_policies::objectives::{score, Objective, ObjectiveContext};
use octopus_policies::{ClusterSnapshot, GreedyPolicy, PlacementPolicy, PlacementRequest};

use crate::table::{emit, f2, render};

fn mem_cfg() -> PolicyConfig {
    PolicyConfig { memory_placement_enabled: true, ..PolicyConfig::default() }
}

fn place_latency_us(snap: &ClusterSnapshot, r: usize, iters: u32) -> f64 {
    let policy = GreedyPolicy::moop(mem_cfg());
    let req = PlacementRequest::unspecified(r, 128 << 20, ClientLocation::OffCluster);
    // Warm up.
    for _ in 0..10 {
        let _ = policy.place(snap, &req);
    }
    let t = Instant::now();
    for _ in 0..iters {
        let _ = policy.place(snap, &req);
    }
    t.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    // Latency vs cluster size (s = 5 media per worker).
    let mut size_rows = Vec::new();
    let mut base_per_media = None;
    for workers in [9u32, 30, 100, 300] {
        let snap = ClusterSnapshot::synthetic(workers, 3, 3);
        let us = place_latency_us(&snap, 3, 200);
        let media = snap.media.len();
        let per_media = us / media as f64;
        let base = *base_per_media.get_or_insert(per_media);
        size_rows.push(vec![
            workers.to_string(),
            media.to_string(),
            f2(us),
            f2(per_media),
            format!("{:.2}x", per_media / base),
        ]);
    }

    // Latency vs replica count on the paper-size cluster.
    let snap9 = ClusterSnapshot::synthetic(9, 3, 3);
    let mut r_rows = Vec::new();
    for r in [1usize, 2, 3, 6, 10] {
        let us = place_latency_us(&snap9, r, 500);
        r_rows.push(vec![r.to_string(), f2(us)]);
    }

    // Greedy vs exhaustive quality on a tiny cluster (s = 9, r = 3).
    let small = ClusterSnapshot::synthetic(3, 2, 1);
    let refs: Vec<&MediaStats> = small.media.iter().collect();
    let ctx = ObjectiveContext::new(&refs, 128 << 20, 3, 3, 2);
    let policy = GreedyPolicy::moop(mem_cfg());
    let req = PlacementRequest::unspecified(3, 128 << 20, ClientLocation::OffCluster);
    let placed = policy.place(&small, &req).unwrap();
    let chosen: Vec<&MediaStats> = placed.iter().map(|m| small.media_stats(*m).unwrap()).collect();
    let greedy_score = score(&chosen, &ctx, &Objective::ALL);
    let mut best = f64::INFINITY;
    let n = refs.len();
    for i in 0..n {
        for j in (i + 1)..n {
            for k in (j + 1)..n {
                best = best.min(score(&[refs[i], refs[j], refs[k]], &ctx, &Objective::ALL));
            }
        }
    }

    let out = format!(
        "Placement scalability — greedy MOOP latency (O(s·r²), §3.3)\n\n\
         Latency vs cluster size (r = 3):\n{}\n\
         Latency vs replica count (9 workers, 45 media):\n{}\n\
         Greedy vs exhaustive (s = 9, r = 3): greedy score {:.4}, exhaustive optimum {:.4}\n\
         (lower is better; ratio {:.2}x — near-optimal, as §3.3 argues via OSP)\n",
        render(&["workers", "media (s)", "place µs", "µs per media", "vs s=45"], &size_rows),
        render(&["replicas (r)", "place µs"], &r_rows),
        greedy_score,
        best,
        greedy_score / best.max(1e-12),
    );
    emit("scalability", &out);
    out
}
