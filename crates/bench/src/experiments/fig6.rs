//! Figure 6: normalized execution time of the nine HiBench workloads on
//! Hadoop MapReduce and Spark, using OctopusFS versus HDFS (§7.5).

use octopus_compute::{hibench_workloads, run_hibench, FsMode, Platform};

use crate::table::{emit, f2, render};

/// Runs the experiment and returns the report text.
pub fn run() -> String {
    let mut rows = Vec::new();
    let mut gains = (Vec::new(), Vec::new());
    for w in hibench_workloads() {
        let h_hdfs = run_hibench(&w, Platform::Hadoop, FsMode::Hdfs).unwrap();
        let h_octo = run_hibench(&w, Platform::Hadoop, FsMode::OctopusFs).unwrap();
        let s_hdfs = run_hibench(&w, Platform::Spark, FsMode::Hdfs).unwrap();
        let s_octo = run_hibench(&w, Platform::Spark, FsMode::OctopusFs).unwrap();
        let hn = h_octo / h_hdfs;
        let sn = s_octo / s_hdfs;
        gains.0.push(1.0 - hn);
        gains.1.push(1.0 - sn);
        rows.push(vec![
            w.name.to_string(),
            w.category.to_string(),
            f2(hn),
            format!("{:.0}%", (1.0 - hn) * 100.0),
            f2(sn),
            format!("{:.0}%", (1.0 - sn) * 100.0),
        ]);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let out = format!(
        "Figure 6 — normalized execution time with OctopusFS over HDFS\n\
         (lower is better; 1.00 = HDFS baseline)\n\n{}\n\
         Average improvement: Hadoop {:.0}%  Spark {:.0}%\n",
        render(&["Workload", "category", "Hadoop norm", "gain", "Spark norm", "gain"], &rows),
        avg(&gains.0) * 100.0,
        avg(&gains.1) * 100.0,
    );
    emit("fig6", &out);
    out
}
