//! Ablation study (DESIGN.md §5): how much does each MOOP objective, the
//! rack-pruning heuristic, and the memory cap contribute? Each variant
//! runs the Figure 3 engine (DFSIO 40 GB, d=27, U=3) and reports mean
//! write/read throughput plus fault-tolerance statistics of the resulting
//! placements (distinct workers and racks per block).

use octopus_common::config::PlacementPolicyKind;
use octopus_common::{ClientLocation, ClusterConfig};
use octopus_core::SimCluster;

use crate::experiments::fig3::{config_for_policy, run_config};
use crate::table::{emit, f1, f2, render};

struct Variant {
    label: &'static str,
    config: ClusterConfig,
}

fn variants() -> Vec<Variant> {
    let mut v = vec![Variant {
        label: "MOOP (full)",
        config: config_for_policy(PlacementPolicyKind::Moop),
    }];
    for (i, label) in [(0u8, "MOOP - DB"), (1, "MOOP - LB"), (2, "MOOP - FT"), (3, "MOOP - TM")] {
        v.push(Variant {
            label,
            config: config_for_policy(PlacementPolicyKind::MoopDropObjective(i)),
        });
    }
    let mut no_pruning = config_for_policy(PlacementPolicyKind::Moop);
    no_pruning.policy.rack_pruning = false;
    v.push(Variant { label: "MOOP, no rack pruning", config: no_pruning });
    let mut uncapped = config_for_policy(PlacementPolicyKind::Moop);
    uncapped.policy.max_memory_fraction = 1.0;
    v.push(Variant { label: "MOOP, memory cap off", config: uncapped });
    v
}

/// Mean distinct workers and racks per block of every file in the sim —
/// the placement-quality side of the ablation.
fn fault_tolerance_stats(sim: &SimCluster) -> (f64, f64) {
    let master = sim.master();
    let snap = master.snapshot();
    let rack_of = |w: octopus_common::WorkerId| snap.worker_stats(w).map(|s| s.rack);
    let mut blocks = 0usize;
    let mut workers_sum = 0usize;
    let mut racks_sum = 0usize;
    for path in (0..27).map(|i| format!("/dfsio/part-{i}")) {
        let Ok(lbs) =
            master.get_file_block_locations(&path, 0, u64::MAX, ClientLocation::OffCluster)
        else {
            continue;
        };
        for lb in lbs {
            let mut ws: Vec<_> = lb.locations.iter().map(|l| l.worker).collect();
            ws.sort_unstable();
            ws.dedup();
            let mut rs: Vec<_> = lb.locations.iter().filter_map(|l| rack_of(l.worker)).collect();
            rs.sort_unstable();
            rs.dedup();
            blocks += 1;
            workers_sum += ws.len();
            racks_sum += rs.len();
        }
    }
    if blocks == 0 {
        (0.0, 0.0)
    } else {
        (workers_sum as f64 / blocks as f64, racks_sum as f64 / blocks as f64)
    }
}

/// Runs the ablation and returns the report text.
pub fn run() -> String {
    let mut rows = Vec::new();
    for v in variants() {
        // Re-run the fig3 engine; also open a second sim of the same
        // config to measure placement quality without the read phase
        // perturbing statistics.
        let run = run_config(v.config.clone(), v.label);
        let mut quality_sim = SimCluster::new(v.config).unwrap();
        {
            use octopus_common::{ReplicationVector, WorkerId, GB};
            quality_sim.master().mkdir("/dfsio").unwrap();
            for i in 0..27u32 {
                quality_sim
                    .submit_write(
                        &format!("/dfsio/part-{i}"),
                        40 * GB / 27,
                        ReplicationVector::from_replication_factor(3),
                        ClientLocation::OnWorker(WorkerId(i % 9)),
                    )
                    .unwrap();
            }
            quality_sim.run_to_completion();
        }
        let (avg_workers, avg_racks) = fault_tolerance_stats(&quality_sim);
        rows.push(vec![
            v.label.to_string(),
            f1(run.write_mean),
            f1(run.read_mean),
            f2(avg_workers),
            f2(avg_racks),
        ]);
    }
    let out = format!(
        "Ablation — MOOP variants on the Figure 3 workload (DFSIO 40 GB, d=27, U=3)\n\
         write/read = mean per-task MB/s; workers/racks = mean distinct per block (3 replicas)\n\n{}",
        render(
            &["Variant", "Write MB/s", "Read MB/s", "workers/blk", "racks/blk"],
            &rows
        )
    );
    emit("ablation", &out);
    out
}
