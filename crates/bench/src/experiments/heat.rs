//! Heat-telemetry experiment: a hot/cold file pair on a real TCP
//! deployment. Each epoch re-reads the hot file, waits for the touch
//! counts to ride worker heartbeats into the master's EWMA tracker, and
//! samples both files' heat scores. The gate requires the hot file to
//! score strictly above the cold one in ≥95% of epochs — i.e. the
//! worker-ring → heartbeat → EWMA path keeps the two reliably separated,
//! not just on average. Mirrors a text table to `results/heat.txt` and a
//! machine-readable summary to `results/heat.json`.

use std::time::{Duration, Instant};

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, MB};
use octopus_core::NetCluster;

use crate::table::{emit, f2, render};

/// Reads of the hot file per epoch.
const READS_PER_EPOCH: usize = 4;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

/// Full run (the `run_all` entry): 20 epochs.
pub fn run() -> String {
    run_mode(false)
}

/// CI smoke: fewer epochs, same pipeline and gate line.
pub fn run_quick() -> String {
    run_mode(true)
}

fn run_mode(quick: bool) -> String {
    let epochs = if quick { 10 } else { 20 };
    let mut config = ClusterConfig::test_cluster(4, 64 * MB, MB / 2);
    config.heartbeat_ms = 25;
    let cluster = NetCluster::start(config).unwrap();
    let client = cluster.client(ClientLocation::OffCluster);
    let data = payload(MB as usize, 77);
    let rv = ReplicationVector::from_replication_factor(2);
    client.write_file("/hot", &data, rv).unwrap();
    client.write_file("/cold", &data, rv).unwrap();

    // Warm-up: wait until the first read touches have crossed a heartbeat,
    // so epoch 0 measures steady-state telemetry, not boot latency.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert_eq!(client.read_file("/hot").unwrap(), data);
        let hot = client.heat("/hot").unwrap();
        let cold = client.heat("/cold").unwrap();
        if hot.score > cold.score || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let mut rows = Vec::new();
    let mut measured: Vec<(f64, f64, bool)> = Vec::new(); // (hot, cold, hot > cold)
    for e in 0..epochs {
        for _ in 0..READS_PER_EPOCH {
            assert_eq!(client.read_file("/hot").unwrap(), data);
        }
        // Two heartbeat intervals: the drained epoch reaches the master.
        std::thread::sleep(Duration::from_millis(60));
        let hot = client.heat("/hot").unwrap();
        let cold = client.heat("/cold").unwrap();
        let hotter = hot.score > cold.score;
        rows.push(vec![
            e.to_string(),
            f2(hot.score),
            f2(cold.score),
            if hotter { "yes".into() } else { "NO".into() },
        ]);
        measured.push((hot.score, cold.score, hotter));
    }

    let hotter_epochs = measured.iter().filter(|m| m.2).count();
    let fraction = hotter_epochs as f64 / epochs as f64;
    let mut out = format!(
        "Access-heat separation: {READS_PER_EPOCH} hot reads per epoch over {epochs} epochs\n\
         on a 4-worker TCP cluster (rf=2); scores are the master-side EWMA\n\
         fed by heartbeat-piggybacked worker touch counts:\n\n"
    );
    out.push_str(&render(&["epoch", "hot score", "cold score", "hot > cold"], &rows));

    let pass = fraction >= 0.95;
    out.push_str(&format!(
        "\nGATE heat hot_fraction={} epochs={epochs} pass={pass}\n",
        f2(fraction)
    ));

    println!("{out}");
    emit("heat", &out);
    emit_json(&measured, epochs, fraction, quick);
    out
}

/// Writes `results/heat.json` (CI uploads and diffs it across runs).
fn emit_json(measured: &[(f64, f64, bool)], epochs: usize, fraction: f64, quick: bool) {
    let mut points = Vec::new();
    for (e, &(hot, cold, hotter)) in measured.iter().enumerate() {
        points.push(format!(
            "    {{\"epoch\": {e}, \"hot_score\": {hot:.4}, \"cold_score\": {cold:.4}, \
             \"hot_above_cold\": {hotter}}}"
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"heat\",\n  \"quick\": {quick},\n  \"workers\": 4,\n  \
         \"reads_per_epoch\": {READS_PER_EPOCH},\n  \"epochs\": {epochs},\n  \
         \"hot_fraction\": {fraction:.4},\n  \"points\": [\n{}\n  ]\n}}\n",
        points.join(",\n")
    );
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join("heat.json"), json);
    }
}
