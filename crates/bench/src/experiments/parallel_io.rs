//! Client-side parallel data path sweep: one DFSIO-style multi-block
//! write+read workload on a real TCP deployment, repeated for I/O windows
//! 1, 2, 4, and 8. Window 1 is the fully serial pre-parallelism client;
//! the speedup column shows how much aggregate throughput the bounded
//! in-flight window recovers (the paper's Figure 2 numbers assume clients
//! keep every pipeline busy). Mirrors a text table to
//! `results/parallel_io.txt` and a machine-readable summary to
//! `results/parallel_io.json`.

use std::time::Instant;

use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, MB};
use octopus_core::NetCluster;

use crate::table::{emit, f2, render};

/// Swept in-flight windows; 1 is the serial baseline.
const WINDOWS: [u32; 4] = [1, 2, 4, 8];

/// Blocks per file (the ISSUE's 8-block workload).
const BLOCKS: usize = 8;

fn payload(len: usize, seed: u64) -> Vec<u8> {
    let octopus_common::BlockData::Real(b) = octopus_common::BlockData::generate_real(len, seed)
    else {
        unreachable!()
    };
    b.to_vec()
}

/// Full run (the `run_all` entry): 1 MB blocks, best of three.
pub fn run() -> String {
    run_mode(false)
}

/// CI smoke: smaller blocks, fewer repeats, same sweep and gate line.
pub fn run_quick() -> String {
    run_mode(true)
}

fn run_mode(quick: bool) -> String {
    let (block_size, iters) = if quick { (MB / 4, 2) } else { (MB, 3) };
    let mut config = ClusterConfig::test_cluster(4, 256 * MB, block_size);
    config.heartbeat_ms = 25;
    // Pace transfers at each tier's device throughput: on loopback every
    // medium is RAM, so without this the sweep measures single-core
    // memcpy and no window can win (see DESIGN.md "Parallel data path").
    // The rates are further scaled down 4x to keep the workload in the
    // device-bound regime the paper's Figure 2 measures — otherwise the
    // CPU cost of loopback RPC on small hosts caps the achievable
    // overlap well below what real devices allow.
    config.emulate_media_bps = true;
    for w in &mut config.workers {
        for m in &mut w.media {
            m.write_bps /= 4.0;
            m.read_bps /= 4.0;
        }
    }
    let cluster = NetCluster::start(config).unwrap();
    let data = payload(BLOCKS * block_size as usize, 42);
    cluster.client(ClientLocation::OffCluster).mkdir("/pio").unwrap();

    let mut rows = Vec::new();
    let mut measured: Vec<(u32, f64, f64)> = Vec::new(); // (window, write_ms, read_ms)
    for w in WINDOWS {
        let client = cluster.client(ClientLocation::OffCluster).with_io_window(w);
        let (mut best_write, mut best_read) = (f64::MAX, f64::MAX);
        for it in 0..iters {
            let path = format!("/pio/w{w}-{it}");
            let t = Instant::now();
            client.write_file(&path, &data, ReplicationVector::from_replication_factor(3)).unwrap();
            let write_ms = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            let back = client.read_file(&path).unwrap();
            let read_ms = t.elapsed().as_secs_f64() * 1e3;
            assert_eq!(back, data, "window {w} corrupted the round trip");
            client.delete(&path, false).unwrap();
            best_write = best_write.min(write_ms);
            best_read = best_read.min(read_ms);
        }
        measured.push((w, best_write, best_read));
    }

    let base_total = measured[0].1 + measured[0].2;
    for &(w, write_ms, read_ms) in &measured {
        let total = write_ms + read_ms;
        rows.push(vec![
            w.to_string(),
            f2(write_ms),
            f2(read_ms),
            f2(total),
            f2(base_total / total),
        ]);
    }

    let mb = (BLOCKS as u64 * block_size) / MB;
    let mut out = format!(
        "Parallel data path: {BLOCKS}-block ({mb} MB) write+read on a 4-worker TCP cluster,\n\
         rf=3, best of {iters}; window = blocks in flight (window 1 = serial client):\n\n"
    );
    out.push_str(&render(&["window", "write ms", "read ms", "total ms", "speedup"], &rows));

    let w4 = measured.iter().find(|m| m.0 == 4).unwrap();
    let w4_total = w4.1 + w4.2;
    let speedup = base_total / w4_total;
    let pass = w4_total < base_total;
    out.push_str(&format!("\nGATE parallel_io window4_speedup={} pass={pass}\n", f2(speedup)));

    println!("{out}");
    emit("parallel_io", &out);
    emit_json(&measured, block_size, quick);
    out
}

/// Writes `results/parallel_io.json` — the bench trajectory's first
/// machine-readable artifact (CI uploads and diffs it across runs).
fn emit_json(measured: &[(u32, f64, f64)], block_size: u64, quick: bool) {
    let base_total = measured[0].1 + measured[0].2;
    let mut sweeps = Vec::new();
    for &(w, write_ms, read_ms) in measured {
        let total = write_ms + read_ms;
        sweeps.push(format!(
            "    {{\"window\": {w}, \"write_ms\": {write_ms:.2}, \"read_ms\": {read_ms:.2}, \
             \"total_ms\": {total:.2}, \"speedup_vs_window1\": {:.3}}}",
            base_total / total
        ));
    }
    let json = format!(
        "{{\n  \"experiment\": \"parallel_io\",\n  \"quick\": {quick},\n  \
         \"workers\": 4,\n  \"blocks\": {BLOCKS},\n  \"block_bytes\": {block_size},\n  \
         \"replication\": 3,\n  \"windows\": [\n{}\n  ]\n}}\n",
        sweeps.join(",\n")
    );
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join("parallel_io.json"), json);
    }
}
