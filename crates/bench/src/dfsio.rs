//! A DFSIO-style distributed I/O benchmark (paper §7: "a distributed I/O
//! benchmark that measures average throughput for write and read
//! operations").
//!
//! `d` writer (or reader) tasks run on cluster nodes round-robin, each
//! handling `total_bytes / d`. The reported metric is the mean per-task
//! throughput — the "average write/read throughput per Worker" of
//! Figures 2, 3, and 5 (per-task rates fall as `d` grows, exactly as the
//! paper's curves do).

use octopus_common::{ClientLocation, ReplicationVector, Result, WorkerId, MB};
use octopus_core::{JobId, JobReport, SimCluster};

/// Outcome of one DFSIO phase.
#[derive(Debug, Clone)]
pub struct DfsioResult {
    /// Per-task reports.
    pub reports: Vec<JobReport>,
    /// Start-to-finish duration of the whole phase (seconds).
    pub makespan_secs: f64,
}

impl DfsioResult {
    /// Mean per-task throughput, MB/s.
    pub fn mean_task_mbps(&self) -> f64 {
        if self.reports.is_empty() {
            return 0.0;
        }
        self.reports.iter().map(|r| r.throughput_mbps()).sum::<f64>() / self.reports.len() as f64
    }

    /// Standard error of the per-task throughput mean, MB/s.
    pub fn sem_task_mbps(&self) -> f64 {
        let n = self.reports.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_task_mbps();
        let var = self.reports.iter().map(|r| (r.throughput_mbps() - mean).powi(2)).sum::<f64>()
            / (n - 1) as f64;
        (var / n as f64).sqrt()
    }

    /// Aggregate cluster throughput (total bytes / makespan), MB/s.
    pub fn aggregate_mbps(&self) -> f64 {
        if self.makespan_secs <= 0.0 {
            return 0.0;
        }
        let bytes: u64 = self.reports.iter().map(|r| r.bytes).sum();
        bytes as f64 / self.makespan_secs / MB as f64
    }
}

/// Writes `total_bytes` of data as `d` parallel tasks (files
/// `<dir>/part-<i>`), each on worker `i mod n`, with the given replication
/// vector. Returns per-task reports and the file paths written.
pub fn write_workload(
    sim: &mut SimCluster,
    dir: &str,
    d: u32,
    total_bytes: u64,
    rv: ReplicationVector,
) -> Result<(DfsioResult, Vec<String>)> {
    sim.master().mkdir(dir)?;
    let n = sim.master().snapshot().workers.len() as u32;
    let per_task = total_bytes / d as u64;
    let start = sim.now();
    let mut jobs: Vec<JobId> = Vec::with_capacity(d as usize);
    let mut paths = Vec::with_capacity(d as usize);
    for i in 0..d {
        let path = format!("{dir}/part-{i}");
        let client = ClientLocation::OnWorker(WorkerId(i % n));
        jobs.push(sim.submit_write(&path, per_task, rv, client)?);
        paths.push(path);
    }
    sim.run_to_completion();
    let makespan_secs = sim.now().secs_since(start);
    let reports = jobs.iter().filter_map(|&j| sim.report(j)).collect();
    Ok((DfsioResult { reports, makespan_secs }, paths))
}

/// Reads the given files with `d` parallel tasks. Task `i` reads file `i`
/// from worker `(i + shift) mod n` — a non-zero `shift` de-correlates
/// readers from the nodes that wrote the data, reproducing the paper's
/// partial-locality read mix (§7.1 observed only ~1/3 local reads).
pub fn read_workload(sim: &mut SimCluster, paths: &[String], shift: u32) -> Result<DfsioResult> {
    let n = sim.master().snapshot().workers.len() as u32;
    let start = sim.now();
    let mut jobs = Vec::with_capacity(paths.len());
    for (i, path) in paths.iter().enumerate() {
        let client = ClientLocation::OnWorker(WorkerId((i as u32 + shift) % n));
        jobs.push(sim.submit_read(path, client)?);
    }
    sim.run_to_completion();
    let makespan_secs = sim.now().secs_since(start);
    let reports = jobs.iter().filter_map(|&j| sim.report(j)).collect();
    Ok(DfsioResult { reports, makespan_secs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_common::ClusterConfig;

    fn sim() -> SimCluster {
        let mut c = ClusterConfig::paper_cluster_scaled(0.05);
        c.block_size = 8 * MB;
        SimCluster::new(c).unwrap()
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut s = sim();
        let (w, paths) = write_workload(
            &mut s,
            "/dfsio",
            9,
            90 * MB,
            ReplicationVector::from_replication_factor(3),
        )
        .unwrap();
        assert_eq!(w.reports.len(), 9);
        assert!(w.reports.iter().all(|r| r.failed.is_none()));
        assert!(w.mean_task_mbps() > 0.0);
        assert!(w.makespan_secs > 0.0);

        let r = read_workload(&mut s, &paths, 3).unwrap();
        assert_eq!(r.reports.len(), 9);
        assert!(r.mean_task_mbps() > 0.0);
        assert!(r.aggregate_mbps() >= r.mean_task_mbps());
    }

    #[test]
    fn more_parallelism_lowers_per_task_throughput() {
        let rv = ReplicationVector::msh(0, 0, 3);
        let mut s1 = sim();
        let (w1, _) = write_workload(&mut s1, "/a", 1, 64 * MB, rv).unwrap();
        let mut s2 = sim();
        let (w2, _) = write_workload(&mut s2, "/b", 27, 27 * 32 * MB, rv).unwrap();
        assert!(
            w2.mean_task_mbps() < w1.mean_task_mbps(),
            "d=27 ({:.0}) must be slower per task than d=1 ({:.0})",
            w2.mean_task_mbps(),
            w1.mean_task_mbps()
        );
    }

    #[test]
    fn sem_is_zero_for_single_task() {
        let mut s = sim();
        let (w, _) =
            write_workload(&mut s, "/one", 1, 16 * MB, ReplicationVector::msh(0, 0, 3)).unwrap();
        assert_eq!(w.sem_task_mbps(), 0.0);
    }
}
