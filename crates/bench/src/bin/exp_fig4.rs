//! Regenerates the paper's fig4 (see DESIGN.md §4). Run with --release.

fn main() {
    octopus_bench::experiments::fig4::run();
}
