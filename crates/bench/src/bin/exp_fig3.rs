//! Regenerates the paper's fig3 (see DESIGN.md §4). Run with --release.

fn main() {
    octopus_bench::experiments::fig3::run();
}
