//! Sweeps the client I/O window over a multi-block write+read workload on
//! a real TCP cluster (see DESIGN.md "Parallel data path"). Run with
//! --release; `--quick` runs the reduced CI smoke variant.

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        octopus_bench::experiments::parallel_io::run_quick();
    } else {
        octopus_bench::experiments::parallel_io::run();
    }
}
