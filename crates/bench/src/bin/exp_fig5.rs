//! Regenerates the paper's fig5 (see DESIGN.md §4). Run with --release.

fn main() {
    octopus_bench::experiments::fig5::run();
}
