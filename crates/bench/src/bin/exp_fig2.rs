//! Regenerates the paper's fig2 (see DESIGN.md §4). Run with --release.

fn main() {
    octopus_bench::experiments::fig2::run();
}
