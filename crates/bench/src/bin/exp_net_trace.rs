//! Assembles end-to-end distributed traces of a faulted mixed workload
//! and prints the top-k slowest requests with critical paths (see
//! DESIGN.md "Observability" → "Tracing"). Run with --release.

fn main() {
    octopus_bench::experiments::net_trace::run();
}
