//! Regenerates the placement-scalability study (DESIGN.md §5 / paper
//! §3.3). Run with --release.

fn main() {
    octopus_bench::experiments::scalability::run();
}
