//! Regenerates the paper's table3 (see DESIGN.md §4). Run with --release.

fn main() {
    octopus_bench::experiments::table3::run();
}
