//! Measures master metadata-path throughput, latency quantiles, and lock
//! contention on a 1M-file in-process namespace. Run with --release;
//! `--quick` runs the reduced 100k-file CI smoke variant.

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        octopus_bench::experiments::metadata::run_quick();
    } else {
        octopus_bench::experiments::metadata::run();
    }
}
