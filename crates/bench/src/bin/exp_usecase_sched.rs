//! Regenerates the §6 tier-aware-scheduling use-case study. Run with
//! --release.

fn main() {
    octopus_bench::experiments::usecase_sched::run();
}
