//! Regenerates every table and figure of the paper's evaluation, writing
//! each report to `results/<id>.txt`. Run with --release.

type Experiment = (&'static str, fn() -> String);

fn main() {
    let experiments: Vec<Experiment> = vec![
        ("Table 2", octopus_bench::experiments::table2::run),
        ("Figure 2", octopus_bench::experiments::fig2::run),
        ("Figure 3", octopus_bench::experiments::fig3::run),
        ("Figure 4", octopus_bench::experiments::fig4::run),
        ("Figure 5", octopus_bench::experiments::fig5::run),
        ("Table 3", octopus_bench::experiments::table3::run),
        ("Figure 6", octopus_bench::experiments::fig6::run),
        ("Figure 7", octopus_bench::experiments::fig7::run),
        ("Ablation", octopus_bench::experiments::ablation::run),
        ("Scalability", octopus_bench::experiments::scalability::run),
        ("Use case: tier-aware scheduling", octopus_bench::experiments::usecase_sched::run),
        ("Parallel I/O window", octopus_bench::experiments::parallel_io::run),
        ("Aggregate I/O scaling", octopus_bench::experiments::aggregate_io::run),
        ("Access-heat separation", octopus_bench::experiments::heat::run),
        ("Auto-tiering vs static", octopus_bench::experiments::autotier::run),
        ("Master metadata contention", octopus_bench::experiments::metadata::run),
    ];
    for (name, run) in experiments {
        octopus_common::log_info!(target: "bench", "msg=\"experiment starting\" name=\"{name}\"");
        let t = std::time::Instant::now();
        run();
        octopus_common::log_info!(
            target: "bench",
            "msg=\"experiment done\" name=\"{name}\" secs={:.1}",
            t.elapsed().as_secs_f64()
        );
    }
}
