//! Regenerates the paper's table2 (see DESIGN.md §4). Run with --release.

fn main() {
    octopus_bench::experiments::table2::run();
}
