//! Sweeps concurrent client counts over a write+read workload on a real
//! TCP cluster, measuring aggregate throughput through the multiplexed
//! transport (see DESIGN.md "Multiplexed transport"). Run with --release;
//! `--quick` runs the reduced CI smoke variant.

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        octopus_bench::experiments::aggregate_io::run_quick();
    } else {
        octopus_bench::experiments::aggregate_io::run();
    }
}
