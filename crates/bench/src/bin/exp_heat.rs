//! Measures hot/cold access-heat separation through the full telemetry
//! path (worker touch rings → heartbeat piggyback → master EWMA). Run
//! with --release; `--quick` runs the reduced CI smoke variant.

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        octopus_bench::experiments::heat::run_quick();
    } else {
        octopus_bench::experiments::heat::run();
    }
}
