//! Regenerates the paper's fig7 (see DESIGN.md §4). Run with --release.

fn main() {
    octopus_bench::experiments::fig7::run();
}
