//! Measures auto-tiering vs static placement on a shifting working set
//! (EWMA classifier → migration round → paced copies into memory). Run
//! with --release; `--quick` runs the reduced CI smoke variant.

fn main() {
    if std::env::args().any(|a| a == "--quick") {
        octopus_bench::experiments::autotier::run_quick();
    } else {
        octopus_bench::experiments::autotier::run();
    }
}
