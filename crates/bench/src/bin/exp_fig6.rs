//! Regenerates the paper's fig6 (see DESIGN.md §4). Run with --release.

fn main() {
    octopus_bench::experiments::fig6::run();
}
