//! Regenerates the MOOP ablation study (DESIGN.md §5). Run with --release.

fn main() {
    octopus_bench::experiments::ablation::run();
}
