//! Dumps the cluster-wide metrics snapshot after a mixed networked
//! workload (see DESIGN.md "Observability"). Run with --release.

fn main() {
    octopus_bench::experiments::net_metrics::run();
}
