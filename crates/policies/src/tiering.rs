//! Tier classification for automated data movement.
//!
//! The paper's MOOP placement (§3.2) only decides where *new* data lands;
//! the authors' follow-up work on automated tiered-storage management
//! moves data continuously based on observed access patterns. The moving
//! part needs a judgement call — "is this file hot, warm, or cold right
//! now?" — and that judgement is a policy like any other: pluggable,
//! pure, and unit-testable. [`TierClassifier`] is the trait; the default
//! [`EwmaThresholdClassifier`] applies fixed thresholds to the master's
//! per-file EWMA heat score (see `octopus_common::heat`). Model-driven
//! classifiers (HMM- or RL-based, as explored in later literature) slot
//! in behind the same trait without touching the planner.
//!
//! Classification is deliberately three-valued: the *warm* band between
//! the hot and cold thresholds is a hysteresis zone in which the planner
//! leaves placement alone, so a file oscillating around a single cutoff
//! does not ping-pong between tiers.

use octopus_common::HeatInfo;

/// A file's temperature as judged by a [`TierClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Temperature {
    /// Accessed heavily right now: worth a replica on a faster tier.
    Hot,
    /// In the hysteresis band: leave its placement alone.
    Warm,
    /// Effectively idle: fast-tier replicas are wasted on it.
    Cold,
}

impl Temperature {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Temperature::Hot => "hot",
            Temperature::Warm => "warm",
            Temperature::Cold => "cold",
        }
    }
}

/// Classifies a file's temperature from its heat telemetry. Implementations
/// must be pure functions of the input (no wall clock, no I/O) so the
/// migration planner stays deterministic and replayable.
pub trait TierClassifier: Send + Sync {
    /// Stable name, recorded in migration audit events.
    fn name(&self) -> &'static str;

    /// Judges one file from its current heat.
    fn classify(&self, heat: &HeatInfo) -> Temperature;
}

/// The default classifier: two fixed thresholds over the blended EWMA heat
/// score (`α·current + (1-α)·ewma`, in touches per epoch).
///
/// ```
/// use octopus_common::HeatInfo;
/// use octopus_policies::{EwmaThresholdClassifier, Temperature, TierClassifier};
///
/// let c = EwmaThresholdClassifier::new(1.0, 0.25);
/// let heat = |score| HeatInfo { score, ..Default::default() };
/// assert_eq!(c.classify(&heat(2.0)), Temperature::Hot);
/// assert_eq!(c.classify(&heat(0.5)), Temperature::Warm);
/// assert_eq!(c.classify(&heat(0.1)), Temperature::Cold);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EwmaThresholdClassifier {
    /// Score at or above which a file is [`Temperature::Hot`].
    pub hot_threshold: f64,
    /// Score at or below which a file is [`Temperature::Cold`].
    pub cold_threshold: f64,
}

impl EwmaThresholdClassifier {
    /// A classifier with the given thresholds. `cold_threshold` is clamped
    /// to at most `hot_threshold` so the warm band cannot invert.
    pub fn new(hot_threshold: f64, cold_threshold: f64) -> Self {
        Self { hot_threshold, cold_threshold: cold_threshold.min(hot_threshold) }
    }
}

impl Default for EwmaThresholdClassifier {
    /// One touch per epoch sustains hotness; a file decayed below a tenth
    /// of a touch per epoch is cold. With the default α = 0.4 a file goes
    /// from untouched to hot after a single epoch of two touches, and
    /// from hot to cold after roughly six idle epochs.
    fn default() -> Self {
        Self::new(1.0, 0.1)
    }
}

impl TierClassifier for EwmaThresholdClassifier {
    fn name(&self) -> &'static str {
        "ewma-threshold"
    }

    fn classify(&self, heat: &HeatInfo) -> Temperature {
        if heat.score >= self.hot_threshold {
            Temperature::Hot
        } else if heat.score <= self.cold_threshold {
            Temperature::Cold
        } else {
            Temperature::Warm
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heat(score: f64) -> HeatInfo {
        HeatInfo { score, ..Default::default() }
    }

    #[test]
    fn thresholds_partition_the_score_axis() {
        let c = EwmaThresholdClassifier::new(2.0, 0.5);
        assert_eq!(c.classify(&heat(5.0)), Temperature::Hot);
        assert_eq!(c.classify(&heat(2.0)), Temperature::Hot, "hot boundary inclusive");
        assert_eq!(c.classify(&heat(1.0)), Temperature::Warm);
        assert_eq!(c.classify(&heat(0.5)), Temperature::Cold, "cold boundary inclusive");
        assert_eq!(c.classify(&heat(0.0)), Temperature::Cold);
    }

    #[test]
    fn inverted_thresholds_clamp_instead_of_misclassifying() {
        // cold > hot would make every score both hot and cold; the
        // constructor collapses the warm band instead.
        let c = EwmaThresholdClassifier::new(1.0, 3.0);
        assert_eq!(c.cold_threshold, 1.0);
        assert_eq!(c.classify(&heat(2.0)), Temperature::Hot);
        assert_eq!(c.classify(&heat(0.5)), Temperature::Cold);
    }

    #[test]
    fn default_marks_untouched_files_cold() {
        let c = EwmaThresholdClassifier::default();
        assert_eq!(c.classify(&HeatInfo::default()), Temperature::Cold);
    }
}
