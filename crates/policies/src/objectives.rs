//! The four optimization objectives of paper §3.2 and the global-criterion
//! score of Eq. 11.
//!
//! Each objective has a value function `f(m⃗)` over a list of chosen media
//! and an ideal upper bound `f*(m⃗)` attained by a (possibly infeasible)
//! Pareto-optimal solution. The placement policies minimize the Euclidean
//! distance `‖f(m⃗) − z*(m⃗)‖` (Eq. 11).

use octopus_common::MediaStats;

/// One of the paper's optimization objectives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Even distribution of data across media (Eq. 1).
    DataBalancing,
    /// Even distribution of I/O connections across media (Eq. 3).
    LoadBalancing,
    /// Replicas spread across tiers, nodes, and (two) racks (Eq. 5).
    FaultTolerance,
    /// Prefer media with the highest write throughput (Eq. 7).
    ThroughputMax,
}

impl Objective {
    /// All four objectives, the default MOOP set.
    pub const ALL: [Objective; 4] = [
        Objective::DataBalancing,
        Objective::LoadBalancing,
        Objective::FaultTolerance,
        Objective::ThroughputMax,
    ];
}

/// Cluster-level constants needed to evaluate the objectives and their
/// ideal bounds: extrema over the feasible media plus the counts `k`, `n`,
/// `t` of tiers, nodes, and racks.
#[derive(Debug, Clone, Copy)]
pub struct ObjectiveContext {
    /// Size of the block being placed (bytes).
    pub block_size: u64,
    /// `max over feasible m of Rem[m]/Cap[m]` (Eq. 2).
    pub max_rem_frac: f64,
    /// `min over feasible m of NrConn[m]` (Eq. 4).
    pub min_conn: u32,
    /// `ln(max over feasible m of WThru[m])` (Eq. 8 normalization).
    pub ln_max_wthru: f64,
    /// Total number of storage tiers in the cluster (`k`).
    pub k: usize,
    /// Total number of worker nodes (`n`).
    pub n: usize,
    /// Total number of racks (`t`).
    pub t: usize,
}

impl ObjectiveContext {
    /// Builds a context from the feasible media set. `k`, `n`, `t` are the
    /// cluster totals (not derived from `feasible`, which may be pruned).
    pub fn new(feasible: &[&MediaStats], block_size: u64, k: usize, n: usize, t: usize) -> Self {
        let mut max_rem_frac = 0.0f64;
        let mut min_conn = u32::MAX;
        let mut max_wthru = 1.0f64;
        for m in feasible {
            max_rem_frac = max_rem_frac.max(m.remaining_fraction());
            min_conn = min_conn.min(m.nr_conn);
            max_wthru = max_wthru.max(m.write_thru);
        }
        if min_conn == u32::MAX {
            min_conn = 0;
        }
        Self {
            block_size,
            max_rem_frac,
            min_conn,
            ln_max_wthru: max_wthru.ln().max(f64::MIN_POSITIVE),
            k,
            n,
            t,
        }
    }
}

/// Data-balancing objective `f_db` (Eq. 1): sum over chosen media of the
/// remaining-capacity fraction after storing the block.
pub fn f_db(chosen: &[&MediaStats], ctx: &ObjectiveContext) -> f64 {
    chosen
        .iter()
        .map(|m| {
            if m.capacity == 0 {
                0.0
            } else {
                (m.remaining as f64 - ctx.block_size as f64) / m.capacity as f64
            }
        })
        .sum()
}

/// Ideal data balancing `f_db*` (Eq. 2).
pub fn ideal_db(len: usize, ctx: &ObjectiveContext) -> f64 {
    len as f64 * ctx.max_rem_frac
}

/// Load-balancing objective `f_lb` (Eq. 3): sum of `1/(NrConn+1)`.
pub fn f_lb(chosen: &[&MediaStats]) -> f64 {
    chosen.iter().map(|m| 1.0 / (m.nr_conn as f64 + 1.0)).sum()
}

/// Ideal load balancing `f_lb*` (Eq. 4).
pub fn ideal_lb(len: usize, ctx: &ObjectiveContext) -> f64 {
    len as f64 / (ctx.min_conn as f64 + 1.0)
}

/// Fault-tolerance objective `f_ft` (Eq. 5).
pub fn f_ft(chosen: &[&MediaStats], ctx: &ObjectiveContext) -> f64 {
    if chosen.is_empty() {
        return 0.0;
    }
    let mut tiers: Vec<_> = chosen.iter().map(|m| m.tier).collect();
    tiers.sort_unstable();
    tiers.dedup();
    let mut nodes: Vec<_> = chosen.iter().map(|m| m.worker).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let mut racks: Vec<_> = chosen.iter().map(|m| m.rack).collect();
    racks.sort_unstable();
    racks.dedup();

    let r = chosen.len();
    let tier_term = tiers.len() as f64 / r.min(ctx.k.max(1)) as f64;
    let node_term = nodes.len() as f64 / r.min(ctx.n.max(1)) as f64;
    let rack_term = if ctx.t == 1 { 1.0 } else { 1.0 / ((racks.len() as f64 - 2.0).abs() + 1.0) };
    tier_term + node_term + rack_term
}

/// Ideal fault tolerance `f_ft*` (Eq. 6): the constant 3.
pub fn ideal_ft() -> f64 {
    3.0
}

/// Throughput-maximization objective `f_tm` (Eq. 7): sum of log-normalized
/// write throughputs.
pub fn f_tm(chosen: &[&MediaStats], ctx: &ObjectiveContext) -> f64 {
    chosen.iter().map(|m| m.write_thru.max(1.0).ln() / ctx.ln_max_wthru).sum()
}

/// Ideal throughput maximization `f_tm*` (Eq. 8): `|m⃗|`.
pub fn ideal_tm(len: usize) -> f64 {
    len as f64
}

/// The global-criterion score `‖f(m⃗) − z*(m⃗)‖₂` (Eq. 11) restricted to a
/// set of objectives. Lower is better; 0 would be the (generally
/// infeasible) ideal point.
pub fn score(chosen: &[&MediaStats], ctx: &ObjectiveContext, objectives: &[Objective]) -> f64 {
    let len = chosen.len();
    let mut sum_sq = 0.0;
    for o in objectives {
        let d = match o {
            Objective::DataBalancing => f_db(chosen, ctx) - ideal_db(len, ctx),
            Objective::LoadBalancing => f_lb(chosen) - ideal_lb(len, ctx),
            Objective::FaultTolerance => f_ft(chosen, ctx) - ideal_ft(),
            Objective::ThroughputMax => f_tm(chosen, ctx) - ideal_tm(len),
        };
        sum_sq += d * d;
    }
    sum_sq.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_common::{MediaId, RackId, TierId, WorkerId};

    #[allow(clippy::too_many_arguments)]
    fn media(
        id: u32,
        worker: u32,
        rack: u16,
        tier: u8,
        cap: u64,
        rem: u64,
        conn: u32,
        wthru: f64,
    ) -> MediaStats {
        MediaStats {
            media: MediaId(id),
            worker: WorkerId(worker),
            rack: RackId(rack),
            tier: TierId(tier),
            capacity: cap,
            remaining: rem,
            nr_conn: conn,
            write_thru: wthru,
            read_thru: wthru,
        }
    }

    fn ctx_for(feasible: &[&MediaStats], bs: u64) -> ObjectiveContext {
        ObjectiveContext::new(feasible, bs, 3, 9, 3)
    }

    #[test]
    fn data_balancing_values() {
        let a = media(0, 0, 0, 0, 100, 80, 0, 100.0);
        let b = media(1, 1, 0, 0, 200, 100, 0, 100.0);
        let all = [&a, &b];
        let ctx = ctx_for(&all, 10);
        // f_db = (80-10)/100 + (100-10)/200 = 0.7 + 0.45
        assert!((f_db(&all, &ctx) - 1.15).abs() < 1e-12);
        // max_rem_frac = 0.8, ideal for 2 media = 1.6
        assert!((ideal_db(2, &ctx) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn load_balancing_prefers_idle_media() {
        let idle = media(0, 0, 0, 0, 100, 100, 0, 100.0);
        let busy = media(1, 1, 0, 0, 100, 100, 4, 100.0);
        assert!((f_lb(&[&idle]) - 1.0).abs() < 1e-12);
        assert!((f_lb(&[&busy]) - 0.2).abs() < 1e-12);
        let ctx = ctx_for(&[&idle, &busy], 0);
        assert_eq!(ctx.min_conn, 0);
        assert!((ideal_lb(2, &ctx) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fault_tolerance_ideal_when_spread() {
        // 3 media on 3 different tiers, 3 different nodes, 2 racks.
        let a = media(0, 0, 0, 0, 1, 1, 0, 1.0);
        let b = media(1, 1, 0, 1, 1, 1, 0, 1.0);
        let c = media(2, 2, 1, 2, 1, 1, 0, 1.0);
        let chosen = [&a, &b, &c];
        let ctx = ctx_for(&chosen, 0);
        assert!((f_ft(&chosen, &ctx) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn fault_tolerance_penalizes_colocated() {
        // 3 media on the same node, same tier, 1 rack present out of 3.
        let a = media(0, 0, 0, 2, 1, 1, 0, 1.0);
        let b = media(1, 0, 0, 2, 1, 1, 0, 1.0);
        let c = media(2, 0, 0, 2, 1, 1, 0, 1.0);
        let chosen = [&a, &b, &c];
        let ctx = ctx_for(&chosen, 0);
        // tiers: 1/3, nodes: 1/3, racks: 1/(|1-2|+1) = 1/2.
        assert!((f_ft(&chosen, &ctx) - (1.0 / 3.0 + 1.0 / 3.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn fault_tolerance_three_racks_worse_than_two() {
        let two = [
            &media(0, 0, 0, 0, 1, 1, 0, 1.0),
            &media(1, 1, 0, 1, 1, 1, 0, 1.0),
            &media(2, 2, 1, 2, 1, 1, 0, 1.0),
        ];
        let three = [
            &media(0, 0, 0, 0, 1, 1, 0, 1.0),
            &media(1, 1, 1, 1, 1, 1, 0, 1.0),
            &media(2, 2, 2, 2, 1, 1, 0, 1.0),
        ];
        let ctx = ctx_for(&two, 0);
        assert!(f_ft(&two, &ctx) > f_ft(&three, &ctx));
    }

    #[test]
    fn fault_tolerance_single_rack_cluster() {
        let a = media(0, 0, 0, 0, 1, 1, 0, 1.0);
        let chosen = [&a];
        let ctx = ObjectiveContext::new(&chosen, 0, 3, 9, 1);
        // t = 1 → rack term is 1 regardless.
        assert!((f_ft(&chosen, &ctx) - (1.0 + 1.0 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn throughput_normalization() {
        let fast = media(0, 0, 0, 0, 1, 1, 0, (1u64 << 31) as f64);
        let slow = media(1, 1, 0, 2, 1, 1, 0, (1u64 << 27) as f64);
        let all = [&fast, &slow];
        let ctx = ctx_for(&all, 0);
        let ftm_fast = f_tm(&[&fast], &ctx);
        let ftm_slow = f_tm(&[&slow], &ctx);
        assert!((ftm_fast - 1.0).abs() < 1e-12); // fastest normalizes to 1
        assert!(ftm_slow < 1.0 && ftm_slow > 0.8); // log compression
    }

    #[test]
    fn score_is_zero_at_ideal_point() {
        // Single medium that is simultaneously best in every respect.
        let m = media(0, 0, 0, 0, 100, 100, 0, 1000.0);
        let chosen = [&m];
        let ctx = ObjectiveContext::new(&chosen, 0, 1, 1, 1);
        assert!(score(&chosen, &ctx, &Objective::ALL) < 1e-9);
    }

    #[test]
    fn score_prefers_pareto_better_choice() {
        // b dominates a in every dimension → lower (better) score.
        let a = media(0, 0, 0, 2, 100, 20, 5, 10.0 * 1e6);
        let b = media(1, 1, 1, 0, 100, 90, 0, 1900.0 * 1e6);
        let all = [&a, &b];
        let ctx = ctx_for(&all, 0);
        assert!(score(&[&b], &ctx, &Objective::ALL) < score(&[&a], &ctx, &Objective::ALL));
    }

    #[test]
    fn empty_context_is_safe() {
        let ctx = ObjectiveContext::new(&[], 0, 3, 9, 3);
        assert_eq!(ctx.min_conn, 0);
        assert_eq!(ctx.max_rem_frac, 0.0);
        assert_eq!(score(&[], &ctx, &Objective::ALL), 3.0); // only f_ft* = 3 differs
    }

    #[test]
    fn optimal_substructure_of_db() {
        // The best 2 media under f_db include the best 1 medium (OSP, §3.3).
        let ms: Vec<MediaStats> =
            (0..4).map(|i| media(i, i, 0, 0, 100, 20 * (i as u64 + 1), 0, 1.0)).collect();
        let refs: Vec<&MediaStats> = ms.iter().collect();
        let ctx = ctx_for(&refs, 0);
        // best single = highest remaining fraction = ms[3]
        let best1 = refs
            .iter()
            .max_by(|a, b| f_db(&[a], &ctx).partial_cmp(&f_db(&[b], &ctx)).unwrap())
            .unwrap()
            .media;
        assert_eq!(best1, MediaId(3));
        // best pair maximizing f_db is {ms[2], ms[3]} which contains ms[3].
        let mut best_pair = (f64::MIN, (0, 0));
        for i in 0..4 {
            for j in (i + 1)..4 {
                let v = f_db(&[refs[i], refs[j]], &ctx);
                if v > best_pair.0 {
                    best_pair = (v, (i, j));
                }
            }
        }
        assert_eq!(best_pair.1, (2, 3));
    }
}
