//! Automated data-management policies — the primary contribution of the
//! OctopusFS paper.
//!
//! - [`objectives`]: the four optimization objectives of §3.2 (data
//!   balancing, load balancing, fault tolerance, throughput maximization),
//!   their ideal upper bounds, and the global-criterion score of Eq. 11.
//! - [`placement`]: the [`PlacementPolicy`] trait, the default MOOP policy
//!   (Algorithms 1 and 2 with the §3.3 pruning heuristics), the four
//!   single-objective policies used in the paper's ablation (§7.2), the
//!   Rule-based baseline, and the two HDFS-default baselines.
//! - [`retrieval`]: the [`RetrievalPolicy`] trait with the rate-based
//!   ordering of Eq. 12 and the HDFS locality-only baseline.
//! - [`removal`]: leave-one-out replica removal for over-replicated blocks
//!   (§5).
//! - [`tiering`]: the [`TierClassifier`] trait judging files hot/warm/cold
//!   from heat telemetry, driving the master's auto-migration planner.
//!
//! Policies are pure: they consume a [`ClusterSnapshot`] (media and worker
//! statistics as reported via heartbeats) and return decisions. This makes
//! them unit-testable and benchmarkable in isolation, and means the same
//! code drives both the real in-process cluster and the simulated one.

pub mod objectives;
pub mod placement;
pub mod removal;
pub mod retrieval;
pub mod snapshot;
pub mod tiering;

pub use placement::{
    build_placement_policy, GreedyPolicy, HdfsPolicy, Objective, PlacementPolicy, PlacementRequest,
    RuleBasedPolicy,
};
pub use removal::{choose_replica_to_remove, choose_replica_to_remove_explained};
pub use retrieval::{build_retrieval_policy, HdfsLocalityPolicy, RateBasedPolicy, RetrievalPolicy};
pub use snapshot::ClusterSnapshot;
pub use tiering::{EwmaThresholdClassifier, Temperature, TierClassifier};
