//! Replica removal for over-replicated blocks — paper §5.
//!
//! When a block has more replicas than its vector requests on some tier,
//! the master evaluates every leave-one-out subset of the current replica
//! list with the Eq. 11 score and removes the replica whose absence yields
//! the best (lowest) score.

use octopus_common::{CandidateScore, Location, MediaStats, TierId};

use crate::objectives::{score, Objective, ObjectiveContext};
use crate::snapshot::ClusterSnapshot;

/// Chooses which replica to remove from `replicas`.
///
/// `over_tier` restricts candidates to the tier that is over-replicated
/// (`None` considers every replica — used when the total is too high but no
/// specific tier is). Returns `None` when no candidate is eligible.
pub fn choose_replica_to_remove(
    snap: &ClusterSnapshot,
    replicas: &[Location],
    over_tier: Option<TierId>,
    block_size: u64,
) -> Option<Location> {
    choose_replica_to_remove_explained(snap, replicas, over_tier, block_size).0
}

/// [`choose_replica_to_remove`] with audit capture: also returns one
/// [`CandidateScore`] per eligible candidate, `total` holding the Eq. 11
/// score of the replica set *with that candidate removed* (lower is
/// better), `chosen` marking the victim. A replica on dead media wins
/// outright and is recorded as the sole candidate with `total = 0`.
pub fn choose_replica_to_remove_explained(
    snap: &ClusterSnapshot,
    replicas: &[Location],
    over_tier: Option<TierId>,
    block_size: u64,
) -> (Option<Location>, Vec<CandidateScore>) {
    let stats: Vec<Option<&MediaStats>> =
        replicas.iter().map(|l| snap.media_stats(l.media)).collect();

    // Replicas on unknown media (dead workers) are the best removal
    // candidates of all — prefer them outright.
    for (i, s) in stats.iter().enumerate() {
        let tier_ok = over_tier.is_none_or(|t| replicas[i].tier == t);
        if s.is_none() && tier_ok {
            let loc = replicas[i];
            let cand = CandidateScore {
                media: loc.media,
                worker: loc.worker,
                tier: loc.tier,
                total: 0.0,
                db: 0.0,
                lb: 0.0,
                ft: 0.0,
                tm: 0.0,
                chosen: true,
            };
            return (Some(loc), vec![cand]);
        }
    }

    let all: Vec<&MediaStats> = stats.iter().flatten().copied().collect();
    let ctx = ObjectiveContext::new(
        &all,
        block_size,
        snap.num_tiers,
        snap.num_workers(),
        snap.num_racks(),
    );

    let mut best: Option<(f64, Location)> = None;
    let mut candidates: Vec<CandidateScore> = Vec::new();
    for (i, loc) in replicas.iter().enumerate() {
        if let Some(t) = over_tier {
            if loc.tier != t {
                continue;
            }
        }
        let remaining: Vec<&MediaStats> = replicas
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .filter_map(|(j, _)| stats[j])
            .collect();
        let s = score(&remaining, &ctx, &Objective::ALL);
        candidates.push(CandidateScore {
            media: loc.media,
            worker: loc.worker,
            tier: loc.tier,
            total: s,
            db: 0.0,
            lb: 0.0,
            ft: 0.0,
            tm: 0.0,
            chosen: false,
        });
        if best.is_none_or(|(bs, _)| s < bs) {
            best = Some((s, *loc));
        }
    }
    if let Some((_, victim)) = best {
        for c in candidates.iter_mut() {
            c.chosen = c.media == victim.media;
        }
    }
    (best.map(|(_, l)| l), candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::testutil::paper_like;
    use octopus_common::{MediaId, StorageTier, WorkerId};

    fn loc_on(snap: &ClusterSnapshot, worker: u32, tier: StorageTier, skip: usize) -> Location {
        let m = snap
            .media
            .iter()
            .filter(|m| m.worker == WorkerId(worker) && m.tier == tier.id())
            .nth(skip)
            .unwrap();
        Location { worker: m.worker, media: m.media, tier: m.tier }
    }

    #[test]
    fn removes_colocated_duplicate_first() {
        let snap = paper_like();
        // Two HDD replicas on worker 0 (different devices) and one on
        // worker 4: removing one of worker 0's keeps node spread.
        let replicas = vec![
            loc_on(&snap, 0, StorageTier::Hdd, 0),
            loc_on(&snap, 0, StorageTier::Hdd, 1),
            loc_on(&snap, 4, StorageTier::Hdd, 0),
        ];
        let victim =
            choose_replica_to_remove(&snap, &replicas, Some(StorageTier::Hdd.id()), 1 << 20)
                .unwrap();
        assert_eq!(victim.worker, WorkerId(0), "keep the node-diverse replica");
    }

    #[test]
    fn respects_tier_restriction() {
        let snap = paper_like();
        let replicas = vec![
            loc_on(&snap, 0, StorageTier::Memory, 0),
            loc_on(&snap, 1, StorageTier::Hdd, 0),
            loc_on(&snap, 5, StorageTier::Hdd, 0),
        ];
        let victim =
            choose_replica_to_remove(&snap, &replicas, Some(StorageTier::Hdd.id()), 1 << 20)
                .unwrap();
        assert_eq!(victim.tier, StorageTier::Hdd.id());
    }

    #[test]
    fn prefers_dead_replica() {
        let snap = paper_like();
        let dead =
            Location { worker: WorkerId(77), media: MediaId(7777), tier: StorageTier::Hdd.id() };
        let replicas = vec![
            loc_on(&snap, 1, StorageTier::Hdd, 0),
            dead,
            loc_on(&snap, 5, StorageTier::Hdd, 0),
        ];
        let victim = choose_replica_to_remove(&snap, &replicas, None, 1 << 20).unwrap();
        assert_eq!(victim, dead);
    }

    #[test]
    fn no_candidate_on_other_tier() {
        let snap = paper_like();
        let replicas = vec![loc_on(&snap, 0, StorageTier::Hdd, 0)];
        assert!(choose_replica_to_remove(&snap, &replicas, Some(StorageTier::Ssd.id()), 1 << 20)
            .is_none());
    }

    #[test]
    fn explained_marks_victim_as_argmin() {
        let snap = paper_like();
        let replicas = vec![
            loc_on(&snap, 0, StorageTier::Hdd, 0),
            loc_on(&snap, 0, StorageTier::Hdd, 1),
            loc_on(&snap, 4, StorageTier::Hdd, 0),
        ];
        let (victim, cands) = choose_replica_to_remove_explained(
            &snap,
            &replicas,
            Some(StorageTier::Hdd.id()),
            1 << 20,
        );
        let victim = victim.unwrap();
        assert_eq!(cands.len(), 3);
        let chosen: Vec<_> = cands.iter().filter(|c| c.chosen).collect();
        assert_eq!(chosen.len(), 1);
        assert_eq!(chosen[0].media, victim.media);
        // The victim's leave-one-out score is the minimum recorded.
        let min = cands.iter().map(|c| c.total).fold(f64::INFINITY, f64::min);
        assert!(chosen[0].total <= min + 1e-12);
    }

    #[test]
    fn keeps_rack_spread_when_possible() {
        let snap = paper_like();
        // Replicas on workers 0, 1 (rack 0) and 3 (rack 1). Removing 0 or 1
        // preserves two racks; removing 3 collapses to one.
        let replicas = vec![
            loc_on(&snap, 0, StorageTier::Hdd, 0),
            loc_on(&snap, 1, StorageTier::Hdd, 0),
            loc_on(&snap, 3, StorageTier::Hdd, 0),
        ];
        let victim = choose_replica_to_remove(&snap, &replicas, None, 1 << 20).unwrap();
        assert_ne!(victim.worker, WorkerId(3));
    }
}
