//! A point-in-time view of cluster statistics, as the master sees them.

use std::collections::HashMap;

use octopus_common::{MediaId, MediaStats, TierId, WorkerId, WorkerStats, MAX_TIERS};

/// Everything a policy needs to know about the cluster: per-media and
/// per-worker statistics (from heartbeats), the tier count `k`, and which
/// tiers are volatile. Built by the master before each policy invocation.
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    /// Statistics for every live storage medium.
    pub media: Vec<MediaStats>,
    /// Statistics for every live worker.
    pub workers: Vec<WorkerStats>,
    /// Number of configured tiers (the paper's `k`).
    pub num_tiers: usize,
    /// `volatile[t]` is true when tier `t` is volatile (memory).
    pub volatile: [bool; MAX_TIERS],
}

impl ClusterSnapshot {
    /// Number of live workers (the paper's `n`).
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of distinct racks among live workers (the paper's `t`).
    pub fn num_racks(&self) -> usize {
        let mut racks: Vec<_> = self.workers.iter().map(|w| w.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        racks.len()
    }

    /// Index from media id to its statistics.
    pub fn media_index(&self) -> HashMap<MediaId, &MediaStats> {
        self.media.iter().map(|m| (m.media, m)).collect()
    }

    /// Statistics of one medium.
    pub fn media_stats(&self, id: MediaId) -> Option<&MediaStats> {
        self.media.iter().find(|m| m.media == id)
    }

    /// Statistics of one worker.
    pub fn worker_stats(&self, id: WorkerId) -> Option<&WorkerStats> {
        self.workers.iter().find(|w| w.worker == id)
    }

    /// All media on a given worker.
    pub fn media_on_worker(&self, id: WorkerId) -> impl Iterator<Item = &MediaStats> {
        self.media.iter().filter(move |m| m.worker == id)
    }

    /// All media in a given tier.
    pub fn media_in_tier(&self, tier: TierId) -> impl Iterator<Item = &MediaStats> {
        self.media.iter().filter(move |m| m.tier == tier)
    }

    /// The live I/O-connection count (`NrConn`, §3.2) of one medium, as
    /// last heartbeated — what the placement cost model keys congestion
    /// avoidance on. `None` when the medium is unknown.
    pub fn media_nr_conn(&self, id: MediaId) -> Option<u32> {
        self.media_stats(id).map(|m| m.nr_conn)
    }
}

impl ClusterSnapshot {
    /// Builds a synthetic snapshot for benchmarks and tests: `n` workers
    /// spread over `racks` racks, each with one Memory medium, one SSD
    /// medium, and `hdds` HDD media, with paper-like throughputs and all
    /// capacity free. Deterministic.
    pub fn synthetic(n: u32, racks: u16, hdds: u32) -> ClusterSnapshot {
        let mb = 1048576.0;
        let mut media = Vec::new();
        let mut workers = Vec::new();
        let mut next_media = 0u32;
        for w in 0..n {
            let rack = octopus_common::RackId((w % racks.max(1) as u32) as u16);
            workers.push(WorkerStats {
                worker: WorkerId(w),
                rack,
                net_thru: 1250.0 * mb,
                nr_conn: 0,
                live: true,
            });
            let mut push = |tier: u8, cap: u64, thru: f64| {
                media.push(MediaStats {
                    media: MediaId(next_media),
                    worker: WorkerId(w),
                    rack,
                    tier: TierId(tier),
                    capacity: cap,
                    remaining: cap,
                    nr_conn: 0,
                    write_thru: thru * mb,
                    read_thru: thru * 1.3 * mb,
                });
                next_media += 1;
            };
            push(0, 4 << 30, 1897.4);
            push(1, 64 << 30, 340.6);
            for _ in 0..hdds {
                push(2, 134 << 30, 126.3);
            }
        }
        let mut volatile = [false; MAX_TIERS];
        volatile[0] = true;
        ClusterSnapshot { media, workers, num_tiers: 3, volatile }
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use octopus_common::RackId;

    /// Builds a snapshot mirroring the paper's cluster shape but tiny:
    /// `n` workers across `racks` racks, each with one Memory, one SSD and
    /// `hdds` HDD media. Capacities/remaining/throughputs configurable per
    /// tier via the `spec` triples `(capacity, remaining, write_thru)`.
    pub fn snapshot(
        n: u32,
        racks: u16,
        hdds: u32,
        mem: (u64, u64, f64),
        ssd: (u64, u64, f64),
        hdd: (u64, u64, f64),
    ) -> ClusterSnapshot {
        let mut media = Vec::new();
        let mut workers = Vec::new();
        let mut next_media = 0u32;
        for w in 0..n {
            let rack = RackId((w % racks as u32) as u16);
            workers.push(WorkerStats {
                worker: WorkerId(w),
                rack,
                net_thru: 1250.0 * 1048576.0,
                nr_conn: 0,
                live: true,
            });
            let mut push = |tier: u8, spec: (u64, u64, f64)| {
                media.push(MediaStats {
                    media: MediaId(next_media),
                    worker: WorkerId(w),
                    rack,
                    tier: TierId(tier),
                    capacity: spec.0,
                    remaining: spec.1,
                    nr_conn: 0,
                    write_thru: spec.2,
                    read_thru: spec.2 * 1.3,
                });
                next_media += 1;
            };
            push(0, mem);
            push(1, ssd);
            for _ in 0..hdds {
                push(2, hdd);
            }
        }
        let mut volatile = [false; MAX_TIERS];
        volatile[0] = true;
        ClusterSnapshot { media, workers, num_tiers: 3, volatile }
    }

    /// A default 9-worker, 3-rack, 3-HDD snapshot with paper-like rates.
    pub fn paper_like() -> ClusterSnapshot {
        let mb = 1048576.0;
        snapshot(
            9,
            3,
            3,
            (4 << 30, 4 << 30, 1897.4 * mb),
            (64 << 30, 64 << 30, 340.6 * mb),
            (134 << 30, 134 << 30, 126.3 * mb),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use super::*;

    #[test]
    fn counts() {
        let s = paper_like();
        assert_eq!(s.num_workers(), 9);
        assert_eq!(s.num_racks(), 3);
        assert_eq!(s.media.len(), 9 * 5);
        assert_eq!(s.num_tiers, 3);
        assert!(s.volatile[0]);
        assert!(!s.volatile[2]);
    }

    #[test]
    fn lookups() {
        let s = paper_like();
        assert_eq!(s.media_on_worker(WorkerId(0)).count(), 5);
        assert_eq!(s.media_in_tier(TierId(2)).count(), 27);
        assert!(s.media_stats(MediaId(0)).is_some());
        assert!(s.media_stats(MediaId(999)).is_none());
        assert!(s.worker_stats(WorkerId(8)).is_some());
        assert_eq!(s.media_index().len(), 45);
    }
}
