//! Data retrieval (replica ordering) policies — paper §4.2.
//!
//! When a client opens a block, the master orders the replica locations so
//! that reading from the first is expected to be fastest. The OctopusFS
//! [`RateBasedPolicy`] estimates the achievable transfer rate of each
//! location (Eq. 12) from the worker's network throughput, the medium's
//! read throughput, and both of their active connection counts. The
//! [`HdfsLocalityPolicy`] baseline orders purely by network distance.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use octopus_common::config::RetrievalPolicyKind;
use octopus_common::{CandidateScore, ClientLocation, Location};

use crate::snapshot::ClusterSnapshot;

/// A replica-ordering policy.
pub trait RetrievalPolicy: Send + Sync {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Orders `locations` best-to-read-first for the given client.
    fn order(
        &self,
        snap: &ClusterSnapshot,
        client: ClientLocation,
        locations: &[Location],
    ) -> Vec<Location>;

    /// Like [`order`](Self::order), but also returns one audit
    /// [`CandidateScore`] per location with `total` holding the decision
    /// metric (the Eq. 12 estimated rate for the rate-based policy —
    /// higher is better) and `chosen` marking the location served first.
    /// Policies without a scored model return no candidates.
    fn order_with_audit(
        &self,
        snap: &ClusterSnapshot,
        client: ClientLocation,
        locations: &[Location],
    ) -> (Vec<Location>, Vec<CandidateScore>) {
        (self.order(snap, client, locations), Vec::new())
    }
}

/// Constructs the retrieval policy selected by configuration.
pub fn build_retrieval_policy(kind: RetrievalPolicyKind, seed: u64) -> Box<dyn RetrievalPolicy> {
    match kind {
        RetrievalPolicyKind::RateBased => Box::new(RateBasedPolicy::new(seed)),
        RetrievalPolicyKind::HdfsLocality => Box::new(HdfsLocalityPolicy::new(seed)),
    }
}

/// The OctopusFS rate-based ordering (Eq. 12).
///
/// For each replica on medium `m` of worker `W` the policy estimates
/// `min(NetThru[W]/(NrConn[W]+1), RThru[m]/(NrConn[m]+1))` — the `+1`
/// accounts for the connection the prospective reader itself will open
/// (and keeps the idle case finite; the paper's formula divides by the raw
/// count). Node-local reads skip the network term entirely. Ties where the
/// network is the bottleneck fall back to the media rate; remaining ties
/// are shuffled to spread load (§4.2).
pub struct RateBasedPolicy {
    rng: Mutex<StdRng>,
}

impl RateBasedPolicy {
    /// Creates the policy with a deterministic RNG seed for tie shuffling.
    pub fn new(seed: u64) -> Self {
        Self { rng: Mutex::new(StdRng::seed_from_u64(seed)) }
    }

    /// The estimated transfer rate for one location, plus the media-only
    /// rate used for tie-breaking. Unknown media/workers (e.g. a replica
    /// on a dead worker) rate as 0 so they sort last but remain available
    /// as failover targets.
    pub fn estimate_rate(
        snap: &ClusterSnapshot,
        client: ClientLocation,
        loc: &Location,
    ) -> (f64, f64) {
        let Some(media) = snap.media_stats(loc.media) else {
            return (0.0, 0.0);
        };
        let media_rate = media.read_thru / (media.nr_conn as f64 + 1.0);
        let local = matches!(client, ClientLocation::OnWorker(w) if w == loc.worker);
        if local {
            return (media_rate, media_rate);
        }
        let Some(worker) = snap.worker_stats(loc.worker) else {
            return (0.0, media_rate);
        };
        let net_rate = worker.net_thru / (worker.nr_conn as f64 + 1.0);
        (net_rate.min(media_rate), media_rate)
    }
}

impl RetrievalPolicy for RateBasedPolicy {
    fn name(&self) -> &'static str {
        "OctopusFS"
    }

    fn order(
        &self,
        snap: &ClusterSnapshot,
        client: ClientLocation,
        locations: &[Location],
    ) -> Vec<Location> {
        let mut rng = self.rng.lock();
        let mut keyed: Vec<(f64, f64, u64, Location)> = locations
            .iter()
            .map(|loc| {
                let (rate, media_rate) = Self::estimate_rate(snap, client, loc);
                (rate, media_rate, rng.random::<u64>(), *loc)
            })
            .collect();
        keyed.sort_by(|a, b| {
            b.0.partial_cmp(&a.0).unwrap().then(b.1.partial_cmp(&a.1).unwrap()).then(a.2.cmp(&b.2))
        });
        keyed.into_iter().map(|(_, _, _, l)| l).collect()
    }

    fn order_with_audit(
        &self,
        snap: &ClusterSnapshot,
        client: ClientLocation,
        locations: &[Location],
    ) -> (Vec<Location>, Vec<CandidateScore>) {
        let ordered = self.order(snap, client, locations);
        let first = ordered.first().copied();
        let candidates = locations
            .iter()
            .map(|loc| {
                let (rate, _) = Self::estimate_rate(snap, client, loc);
                CandidateScore {
                    media: loc.media,
                    worker: loc.worker,
                    tier: loc.tier,
                    total: rate,
                    db: 0.0,
                    lb: 0.0,
                    ft: 0.0,
                    tm: 0.0,
                    chosen: Some(*loc) == first,
                }
            })
            .collect();
        (ordered, candidates)
    }
}

/// The HDFS baseline: order by network distance only (node-local, then
/// rack-local, then off-rack), shuffling within each distance class. Tiers
/// and device load are ignored — exactly what §7.3 compares against.
pub struct HdfsLocalityPolicy {
    rng: Mutex<StdRng>,
}

impl HdfsLocalityPolicy {
    /// Creates the policy with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: Mutex::new(StdRng::seed_from_u64(seed)) }
    }

    fn distance_weight(snap: &ClusterSnapshot, client: ClientLocation, loc: &Location) -> u32 {
        let ClientLocation::OnWorker(cw) = client else {
            return 4; // off-cluster: everything is off-rack
        };
        if cw == loc.worker {
            return 0;
        }
        let (Some(a), Some(b)) = (snap.worker_stats(cw), snap.worker_stats(loc.worker)) else {
            return 4;
        };
        if a.rack == b.rack {
            2
        } else {
            4
        }
    }
}

impl RetrievalPolicy for HdfsLocalityPolicy {
    fn name(&self) -> &'static str {
        "HDFS"
    }

    fn order(
        &self,
        snap: &ClusterSnapshot,
        client: ClientLocation,
        locations: &[Location],
    ) -> Vec<Location> {
        let mut rng = self.rng.lock();
        let mut keyed: Vec<(u32, u64, Location)> = locations
            .iter()
            .map(|loc| (Self::distance_weight(snap, client, loc), rng.random::<u64>(), *loc))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        keyed.into_iter().map(|(_, _, l)| l).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::testutil::paper_like;
    use octopus_common::{MediaId, StorageTier, WorkerId};

    fn loc(snap: &ClusterSnapshot, worker: u32, tier: StorageTier) -> Location {
        let m = snap
            .media
            .iter()
            .find(|m| m.worker == WorkerId(worker) && m.tier == tier.id())
            .unwrap();
        Location { worker: m.worker, media: m.media, tier: m.tier }
    }

    #[test]
    fn rate_based_prefers_memory_over_remote_hdd() {
        let snap = paper_like();
        let locations = vec![
            loc(&snap, 3, StorageTier::Hdd),
            loc(&snap, 5, StorageTier::Memory),
            loc(&snap, 7, StorageTier::Hdd),
        ];
        let p = RateBasedPolicy::new(1);
        let ordered = p.order(&snap, ClientLocation::OffCluster, &locations);
        assert_eq!(ordered[0].tier, StorageTier::Memory.id());
    }

    #[test]
    fn rate_based_local_hdd_vs_remote_memory_depends_on_congestion() {
        // Paper §4.2's example: with an idle network, a remote in-memory
        // replica beats a local HDD replica; with a congested remote
        // worker, the local HDD wins.
        let mut snap = paper_like();
        let local_hdd = loc(&snap, 0, StorageTier::Hdd);
        let remote_mem = loc(&snap, 4, StorageTier::Memory);
        let client = ClientLocation::OnWorker(WorkerId(0));
        let p = RateBasedPolicy::new(1);

        let ordered = p.order(&snap, client, &[local_hdd, remote_mem]);
        assert_eq!(ordered[0], remote_mem, "idle network: remote memory first");

        // Congest worker 4's NIC with 10 connections.
        for w in snap.workers.iter_mut() {
            if w.worker == WorkerId(4) {
                w.nr_conn = 10;
            }
        }
        let ordered = p.order(&snap, client, &[local_hdd, remote_mem]);
        assert_eq!(ordered[0], local_hdd, "congested network: local HDD first");
    }

    #[test]
    fn rate_based_accounts_media_load() {
        let mut snap = paper_like();
        let a = loc(&snap, 1, StorageTier::Ssd);
        let b = loc(&snap, 2, StorageTier::Ssd);
        // Load a's SSD heavily.
        for m in snap.media.iter_mut() {
            if m.media == a.media {
                m.nr_conn = 20;
            }
        }
        let p = RateBasedPolicy::new(1);
        let ordered = p.order(&snap, ClientLocation::OffCluster, &[a, b]);
        assert_eq!(ordered[0], b);
    }

    #[test]
    fn rate_based_unknown_media_sorts_last() {
        let snap = paper_like();
        let good = loc(&snap, 1, StorageTier::Hdd);
        let dead =
            Location { worker: WorkerId(99), media: MediaId(9999), tier: StorageTier::Hdd.id() };
        let p = RateBasedPolicy::new(1);
        let ordered = p.order(&snap, ClientLocation::OffCluster, &[dead, good]);
        assert_eq!(ordered[0], good);
        assert_eq!(ordered[1], dead);
    }

    #[test]
    fn estimate_rate_matches_equation() {
        let mut snap = paper_like();
        for w in snap.workers.iter_mut() {
            w.nr_conn = 4; // → net rate = NetThru / 5
        }
        let l = loc(&snap, 2, StorageTier::Ssd);
        for m in snap.media.iter_mut() {
            if m.media == l.media {
                m.nr_conn = 1; // → media rate = RThru / 2
            }
        }
        let media = *snap.media_stats(l.media).unwrap();
        let worker = *snap.worker_stats(l.worker).unwrap();
        let (rate, media_rate) =
            RateBasedPolicy::estimate_rate(&snap, ClientLocation::OffCluster, &l);
        assert!((media_rate - media.read_thru / 2.0).abs() < 1e-6);
        assert!((rate - (worker.net_thru / 5.0).min(media.read_thru / 2.0)).abs() < 1e-6);
    }

    #[test]
    fn hdfs_orders_by_distance_only() {
        let snap = paper_like();
        // Worker 0's rack is {0,1,2}.
        let local = loc(&snap, 0, StorageTier::Hdd);
        let rack_local_mem = loc(&snap, 1, StorageTier::Memory);
        let off_rack_mem = loc(&snap, 5, StorageTier::Memory);
        let p = HdfsLocalityPolicy::new(1);
        let ordered = p.order(
            &snap,
            ClientLocation::OnWorker(WorkerId(0)),
            &[off_rack_mem, rack_local_mem, local],
        );
        assert_eq!(ordered[0], local, "HDFS picks the local HDD over any memory replica");
        assert_eq!(ordered[1], rack_local_mem);
        assert_eq!(ordered[2], off_rack_mem);
    }

    #[test]
    fn hdfs_off_cluster_client_shuffles() {
        let snap = paper_like();
        let locations: Vec<Location> = (0..6).map(|w| loc(&snap, w, StorageTier::Hdd)).collect();
        let p = HdfsLocalityPolicy::new(99);
        let o1 = p.order(&snap, ClientLocation::OffCluster, &locations);
        let o2 = p.order(&snap, ClientLocation::OffCluster, &locations);
        assert_eq!(o1.len(), 6);
        // With everything equidistant, two orderings should differ
        // (probability of identical shuffles is negligible).
        assert_ne!(o1, o2);
    }

    #[test]
    fn rate_based_audit_marks_best_rate_chosen() {
        let snap = paper_like();
        let locations = vec![
            loc(&snap, 3, StorageTier::Hdd),
            loc(&snap, 5, StorageTier::Memory),
            loc(&snap, 7, StorageTier::Hdd),
        ];
        let p = RateBasedPolicy::new(1);
        let (ordered, cands) = p.order_with_audit(&snap, ClientLocation::OffCluster, &locations);
        assert_eq!(cands.len(), 3);
        let chosen: Vec<_> = cands.iter().filter(|c| c.chosen).collect();
        assert_eq!(chosen.len(), 1);
        assert_eq!(chosen[0].media, ordered[0].media);
        // The chosen location has the maximal recorded rate (higher is
        // better for retrievals).
        let max = cands.iter().map(|c| c.total).fold(f64::NEG_INFINITY, f64::max);
        assert!(chosen[0].total >= max - 1e-9);
    }

    #[test]
    fn hdfs_audit_has_no_scored_candidates() {
        let snap = paper_like();
        let locations = vec![loc(&snap, 0, StorageTier::Hdd), loc(&snap, 5, StorageTier::Hdd)];
        let p = HdfsLocalityPolicy::new(1);
        let (ordered, cands) = p.order_with_audit(&snap, ClientLocation::OffCluster, &locations);
        assert_eq!(ordered.len(), 2);
        assert!(cands.is_empty());
    }

    #[test]
    fn factory_builds_both() {
        assert_eq!(build_retrieval_policy(RetrievalPolicyKind::RateBased, 0).name(), "OctopusFS");
        assert_eq!(build_retrieval_policy(RetrievalPolicyKind::HdfsLocality, 0).name(), "HDFS");
    }
}
