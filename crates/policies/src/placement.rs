//! Block placement policies (paper §3.3 and the §7.2 baselines).
//!
//! The default **MOOP policy** implements Algorithm 1 (`solve_moop`: pick
//! the medium minimizing the global-criterion score when appended to the
//! chosen list) inside Algorithm 2 (`place`: iterate over the replication
//! vector, generating pruned option lists per replica). The same greedy
//! engine parameterized with a single objective yields the paper's DB, LB,
//! FT, and TM ablation policies. The **Rule-based** and two **HDFS**
//! baselines from §7.2 are implemented separately.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::seq::{IndexedRandom, SliceRandom};
use rand::SeedableRng;
use std::collections::HashSet;

use octopus_common::config::{PlacementPolicyKind, PolicyConfig};
use octopus_common::{
    CandidateScore, ClientLocation, DecisionRound, FsError, MediaId, MediaStats, RackId,
    ReplicationVector, Result, TierId, WorkerId,
};

pub use crate::objectives::Objective;
use crate::objectives::{f_db, f_ft, f_lb, f_tm, score, ObjectiveContext};
use crate::snapshot::ClusterSnapshot;

/// A request to choose storage media for the replicas of one block.
#[derive(Debug, Clone)]
pub struct PlacementRequest {
    /// Size of the block to place, bytes.
    pub block_size: u64,
    /// Where the writing client runs.
    pub client: ClientLocation,
    /// One entry per replica to place: `Some(tier)` pins the replica to a
    /// tier (from the replication vector), `None` lets the policy choose
    /// (the vector's "Unspecified" entries).
    pub tier_pins: Vec<Option<TierId>>,
    /// Media already hosting replicas of this block (re-replication after
    /// failures, or additions triggered by `setReplication`). They count
    /// toward the objective evaluation and are excluded from the options.
    pub existing: Vec<MediaId>,
    /// Workers no replica may land on — a client's pipeline recovery
    /// (§3.1) excludes the workers its failed write attempts already hit,
    /// so the replacement placement avoids them.
    pub excluded_workers: Vec<WorkerId>,
}

impl PlacementRequest {
    /// Expands a replication vector into a request: pinned replicas first
    /// (in tier-slot order), then the unspecified ones.
    pub fn from_vector(rv: ReplicationVector, block_size: u64, client: ClientLocation) -> Self {
        let mut pins = Vec::with_capacity(rv.total() as usize);
        for (tier, count) in rv.iter_tiers() {
            for _ in 0..count {
                pins.push(Some(tier));
            }
        }
        for _ in 0..rv.unspecified() {
            pins.push(None);
        }
        Self {
            block_size,
            client,
            tier_pins: pins,
            existing: Vec::new(),
            excluded_workers: Vec::new(),
        }
    }

    /// A request for `r` replicas with no tier constraints.
    pub fn unspecified(r: usize, block_size: u64, client: ClientLocation) -> Self {
        Self {
            block_size,
            client,
            tier_pins: vec![None; r],
            existing: Vec::new(),
            excluded_workers: Vec::new(),
        }
    }

    /// Total replicas the block will have after placement succeeds.
    pub fn total_replicas(&self) -> usize {
        self.tier_pins.len() + self.existing.len()
    }
}

/// A block placement policy. Returns the chosen media for the *new*
/// replicas, in pipeline order. May return fewer media than requested when
/// the cluster cannot satisfy every constraint (the master logs and retries
/// later, as HDFS does); it returns an error only when nothing at all can
/// be placed while at least one replica was requested.
pub trait PlacementPolicy: Send + Sync {
    /// Human-readable policy name (used in reports and experiment output).
    fn name(&self) -> &'static str;

    /// Chooses media for the requested replicas.
    fn place(&self, snap: &ClusterSnapshot, req: &PlacementRequest) -> Result<Vec<MediaId>>;

    /// Like [`place`](Self::place), but also returns one audit
    /// [`DecisionRound`] per replica slot: every candidate evaluated with
    /// its per-objective scores and the winner. Policies without a scored
    /// model (the rule-based and HDFS baselines) return empty rounds.
    fn place_with_audit(
        &self,
        snap: &ClusterSnapshot,
        req: &PlacementRequest,
    ) -> Result<(Vec<MediaId>, Vec<DecisionRound>)> {
        Ok((self.place(snap, req)?, Vec::new()))
    }
}

/// Constructs the policy selected by a [`PolicyConfig`].
pub fn build_placement_policy(
    kind: PlacementPolicyKind,
    cfg: &PolicyConfig,
    seed: u64,
) -> Box<dyn PlacementPolicy> {
    match kind {
        PlacementPolicyKind::Moop => Box::new(GreedyPolicy::moop(cfg.clone())),
        PlacementPolicyKind::DataBalancing => {
            Box::new(GreedyPolicy::single(Objective::DataBalancing, cfg.clone()))
        }
        PlacementPolicyKind::LoadBalancing => {
            Box::new(GreedyPolicy::single(Objective::LoadBalancing, cfg.clone()))
        }
        PlacementPolicyKind::FaultTolerance => {
            Box::new(GreedyPolicy::single(Objective::FaultTolerance, cfg.clone()))
        }
        PlacementPolicyKind::ThroughputMax => {
            Box::new(GreedyPolicy::single(Objective::ThroughputMax, cfg.clone()))
        }
        PlacementPolicyKind::RuleBased => Box::new(RuleBasedPolicy::new(cfg.clone(), seed)),
        PlacementPolicyKind::HdfsHddOnly => Box::new(HdfsPolicy::hdd_only(seed)),
        PlacementPolicyKind::HdfsTierBlind => Box::new(HdfsPolicy::tier_blind(seed)),
        PlacementPolicyKind::MoopDropObjective(i) => {
            Box::new(GreedyPolicy::moop_without(i, cfg.clone()))
        }
    }
}

// ---------------------------------------------------------------------------
// The greedy MOOP engine (Algorithms 1 + 2).
// ---------------------------------------------------------------------------

/// The greedy multi-objective placement engine. With all four objectives it
/// is the paper's default MOOP policy; with a single objective it is one of
/// the §7.2 ablation policies.
///
/// ```
/// use octopus_common::config::PolicyConfig;
/// use octopus_common::ClientLocation;
/// use octopus_policies::{ClusterSnapshot, GreedyPolicy, PlacementPolicy, PlacementRequest};
///
/// let snapshot = ClusterSnapshot::synthetic(9, 3, 3); // the paper's cluster shape
/// let policy = GreedyPolicy::moop(PolicyConfig::default());
/// let request = PlacementRequest::unspecified(3, 128 << 20, ClientLocation::OffCluster);
/// let media = policy.place(&snapshot, &request).unwrap();
/// assert_eq!(media.len(), 3); // three replicas on three distinct media
/// ```
pub struct GreedyPolicy {
    objectives: Vec<Objective>,
    cfg: PolicyConfig,
    name: &'static str,
    tie_rng: Mutex<StdRng>,
}

impl GreedyPolicy {
    /// The default MOOP policy over all four objectives.
    pub fn moop(cfg: PolicyConfig) -> Self {
        Self {
            objectives: Objective::ALL.to_vec(),
            cfg,
            name: "MOOP",
            tie_rng: Mutex::new(StdRng::seed_from_u64(0x7135)),
        }
    }

    /// A single-objective ablation policy. The §3.3 memory cap is a
    /// property of the MOOP default policy; the pure-objective ablations
    /// run uncapped (the paper's TM "heavily exploits the Memory tier"
    /// until it is exhausted — §7.2).
    pub fn single(objective: Objective, cfg: PolicyConfig) -> Self {
        let name = match objective {
            Objective::DataBalancing => "DB",
            Objective::LoadBalancing => "LB",
            Objective::FaultTolerance => "FT",
            Objective::ThroughputMax => "TM",
        };
        let cfg = PolicyConfig { max_memory_fraction: 1.0, ..cfg };
        Self {
            objectives: vec![objective],
            cfg,
            name,
            tie_rng: Mutex::new(StdRng::seed_from_u64(0x7135)),
        }
    }

    /// MOOP with one objective dropped — the per-objective ablation of
    /// DESIGN.md §5. `drop` indexes [`Objective::ALL`] (0=DB, 1=LB, 2=FT,
    /// 3=TM); out-of-range values drop nothing.
    pub fn moop_without(drop: u8, cfg: PolicyConfig) -> Self {
        let objectives: Vec<Objective> = Objective::ALL
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != drop as usize)
            .map(|(_, &o)| o)
            .collect();
        let name = match drop {
            0 => "MOOP-DB",
            1 => "MOOP-LB",
            2 => "MOOP-FT",
            3 => "MOOP-TM",
            _ => "MOOP",
        };
        Self { objectives, cfg, name, tie_rng: Mutex::new(StdRng::seed_from_u64(0x7135)) }
    }

    /// A policy over an arbitrary objective subset (for experimentation).
    pub fn with_objectives(objectives: Vec<Objective>, cfg: PolicyConfig) -> Self {
        Self { objectives, cfg, name: "custom", tie_rng: Mutex::new(StdRng::seed_from_u64(0x7135)) }
    }

    /// Algorithm 1: evaluate appending each option to `chosen` and return
    /// the option with the lowest global-criterion score. Ties (within
    /// epsilon) break uniformly at random so equivalent media share load —
    /// without this, single-objective policies would pile every block onto
    /// the same devices.
    fn solve_moop<'a>(
        &self,
        options: &[&'a MediaStats],
        chosen: &[&'a MediaStats],
        ctx: &ObjectiveContext,
        mut audit: Option<&mut Vec<CandidateScore>>,
    ) -> Option<&'a MediaStats> {
        let mut best_score = f64::INFINITY;
        let mut best: Vec<&MediaStats> = Vec::new();
        let mut trial: Vec<&MediaStats> = Vec::with_capacity(chosen.len() + 1);
        for &option in options {
            trial.clear();
            trial.extend_from_slice(chosen);
            trial.push(option);
            let s = score(&trial, ctx, &self.objectives);
            if let Some(a) = audit.as_deref_mut() {
                a.push(CandidateScore {
                    media: option.media,
                    worker: option.worker,
                    tier: option.tier,
                    total: s,
                    db: f_db(&trial, ctx),
                    lb: f_lb(&trial),
                    ft: f_ft(&trial, ctx),
                    tm: f_tm(&trial, ctx),
                    chosen: false,
                });
            }
            let eps = 1e-9 * (1.0 + best_score.abs().min(1e12));
            if s < best_score - eps {
                best_score = s;
                best.clear();
                best.push(option);
            } else if (s - best_score).abs() <= eps {
                best.push(option);
            }
        }
        let mut rng = self.tie_rng.lock();
        let winner = best.as_slice().choose(&mut *rng).copied();
        if let (Some(a), Some(w)) = (audit, winner) {
            for c in a.iter_mut() {
                c.chosen = c.media == w.media;
            }
        }
        winner
    }

    /// GenOptions: the feasible, heuristically pruned option list for the
    /// next replica (§3.3).
    #[allow(clippy::too_many_arguments)]
    fn gen_options<'a>(
        &self,
        snap: &'a ClusterSnapshot,
        req: &PlacementRequest,
        pin: Option<TierId>,
        replica_index: usize,
        used_media: &HashSet<MediaId>,
        rack_order: &[RackId],
        volatile_used: usize,
    ) -> Vec<&'a MediaStats> {
        let volatile_cap = self.volatile_cap(req);
        let base: Vec<&MediaStats> = snap
            .media
            .iter()
            .filter(|m| !used_media.contains(&m.media))
            .filter(|m| !req.excluded_workers.contains(&m.worker))
            .filter(|m| m.fits(req.block_size))
            .filter(|m| match pin {
                Some(t) => m.tier == t,
                None => {
                    let is_volatile = snap.volatile[m.tier.0 as usize];
                    if !is_volatile {
                        true
                    } else {
                        self.cfg.memory_placement_enabled && volatile_used < volatile_cap
                    }
                }
            })
            .collect();

        // Client-collocation heuristic for the very first replica.
        if replica_index == 0 && rack_order.is_empty() && self.cfg.prefer_local_client {
            if let ClientLocation::OnWorker(w) = req.client {
                let local: Vec<&MediaStats> =
                    base.iter().copied().filter(|m| m.worker == w).collect();
                if !local.is_empty() {
                    return local;
                }
            }
        }

        // Rack-pruning heuristic: after the first choice, prefer a second
        // rack; once two racks are involved, stay within them.
        if self.cfg.rack_pruning {
            let mut racks = rack_order.to_vec();
            racks.dedup();
            if racks.len() == 1 {
                let off: Vec<&MediaStats> =
                    base.iter().copied().filter(|m| m.rack != racks[0]).collect();
                if !off.is_empty() {
                    return off;
                }
            } else if racks.len() >= 2 {
                let two = [racks[0], racks[1]];
                let within: Vec<&MediaStats> =
                    base.iter().copied().filter(|m| two.contains(&m.rack)).collect();
                if !within.is_empty() {
                    return within;
                }
            }
        }
        base
    }

    /// Maximum number of replicas allowed on volatile tiers when the
    /// placement policy chooses the tier itself (pinned memory replicas
    /// are the user's explicit decision and are not capped).
    fn volatile_cap(&self, req: &PlacementRequest) -> usize {
        let r = req.total_replicas();
        (r as f64 * self.cfg.max_memory_fraction).floor() as usize
    }

    /// Algorithm 2 with optional audit capture: one [`DecisionRound`] per
    /// replica slot (including deferred ones, with no chosen medium).
    fn place_inner(
        &self,
        snap: &ClusterSnapshot,
        req: &PlacementRequest,
        mut audit: Option<&mut Vec<DecisionRound>>,
    ) -> Result<Vec<MediaId>> {
        let index = snap.media_index();
        let mut chosen_stats: Vec<&MediaStats> = Vec::new();
        let mut used: HashSet<MediaId> = HashSet::new();
        let mut rack_order: Vec<RackId> = Vec::new();
        let mut volatile_used = 0usize;

        for &id in &req.existing {
            used.insert(id);
            if let Some(&m) = index.get(&id) {
                chosen_stats.push(m);
                if !rack_order.contains(&m.rack) {
                    rack_order.push(m.rack);
                }
                if snap.volatile[m.tier.0 as usize] {
                    volatile_used += 1;
                }
            }
        }

        let (k, n, t) = (snap.num_tiers, snap.num_workers(), snap.num_racks());
        let mut placed: Vec<MediaId> = Vec::with_capacity(req.tier_pins.len());

        for (i, &pin) in req.tier_pins.iter().enumerate() {
            let options = self.gen_options(snap, req, pin, i, &used, &rack_order, volatile_used);
            // The context's extrema span the feasible media plus already
            // chosen ones (all are cluster media).
            let mut ctx_media = options.clone();
            ctx_media.extend_from_slice(&chosen_stats);
            let ctx = ObjectiveContext::new(&ctx_media, req.block_size, k, n, t);
            let mut round_scores = audit.as_ref().map(|_| Vec::new());
            let best = self.solve_moop(&options, &chosen_stats, &ctx, round_scores.as_mut());
            if let Some(a) = audit.as_deref_mut() {
                a.push(DecisionRound {
                    replica_index: i as u32,
                    tier_pin: pin,
                    candidates: round_scores.unwrap_or_default(),
                    chosen_media: best.map(|m| m.media),
                });
            }
            let Some(best) = best else {
                // Cannot place this replica now; the master retries on a
                // later scan, so this is expected pressure — not an error.
                octopus_common::log_debug!(
                    target: "policies::placement",
                    "msg=\"replica deferred\" policy={} replica={i} pin={pin:?}",
                    self.name
                );
                continue;
            };
            used.insert(best.media);
            if !rack_order.contains(&best.rack) {
                rack_order.push(best.rack);
            }
            if snap.volatile[best.tier.0 as usize] {
                volatile_used += 1;
            }
            chosen_stats.push(best);
            placed.push(best.media);
        }

        if placed.is_empty() && !req.tier_pins.is_empty() {
            return Err(FsError::PlacementFailed(format!(
                "{}: no feasible media for any of {} replicas (block size {})",
                self.name,
                req.tier_pins.len(),
                req.block_size
            )));
        }
        Ok(placed)
    }
}

impl PlacementPolicy for GreedyPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    /// Algorithm 2.
    fn place(&self, snap: &ClusterSnapshot, req: &PlacementRequest) -> Result<Vec<MediaId>> {
        self.place_inner(snap, req, None)
    }

    fn place_with_audit(
        &self,
        snap: &ClusterSnapshot,
        req: &PlacementRequest,
    ) -> Result<(Vec<MediaId>, Vec<DecisionRound>)> {
        let mut rounds = Vec::with_capacity(req.tier_pins.len());
        let placed = self.place_inner(snap, req, Some(&mut rounds))?;
        Ok((placed, rounds))
    }
}

// ---------------------------------------------------------------------------
// Rule-based baseline (§7.2).
// ---------------------------------------------------------------------------

/// The Rule-based baseline: replicas round-robin across storage tiers on
/// randomly selected nodes across two racks. Topology- and tier-aware, but
/// ignores load and capacity statistics — the paper uses it to show the
/// value of the model-based MOOP approach.
pub struct RuleBasedPolicy {
    cfg: PolicyConfig,
    state: Mutex<RuleState>,
}

struct RuleState {
    rng: StdRng,
    tier_cursor: usize,
}

impl RuleBasedPolicy {
    /// Creates the policy with a deterministic RNG seed.
    pub fn new(cfg: PolicyConfig, seed: u64) -> Self {
        Self {
            cfg,
            state: Mutex::new(RuleState { rng: StdRng::seed_from_u64(seed), tier_cursor: 0 }),
        }
    }
}

impl PlacementPolicy for RuleBasedPolicy {
    fn name(&self) -> &'static str {
        "Rule-based"
    }

    fn place(&self, snap: &ClusterSnapshot, req: &PlacementRequest) -> Result<Vec<MediaId>> {
        let mut st = self.state.lock();
        let mut used_media: HashSet<MediaId> = req.existing.iter().copied().collect();
        let mut used_workers: HashSet<WorkerId> = HashSet::new();
        let index = snap.media_index();
        for id in &req.existing {
            if let Some(m) = index.get(id) {
                used_workers.insert(m.worker);
            }
        }

        // Pick two target racks at random.
        let mut racks: Vec<RackId> = snap.workers.iter().map(|w| w.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        racks.shuffle(&mut st.rng);
        racks.truncate(2);

        // Tiers eligible for round-robin: all, except volatile ones when
        // memory placement is disabled.
        let tiers: Vec<TierId> = (0..snap.num_tiers as u8)
            .map(TierId)
            .filter(|t| !snap.volatile[t.0 as usize] || self.cfg.memory_placement_enabled)
            .collect();
        if tiers.is_empty() {
            return Err(FsError::PlacementFailed("rule-based: no eligible tiers".into()));
        }

        let mut placed = Vec::new();
        for &pin in &req.tier_pins {
            let tier = match pin {
                Some(t) => t,
                None => {
                    let t = tiers[st.tier_cursor % tiers.len()];
                    st.tier_cursor += 1;
                    t
                }
            };
            // Candidates: media of that tier, in the two racks, with space,
            // preferring unused workers. Fall back progressively.
            let tier_media = |restrict_racks: bool, distinct_workers: bool| {
                snap.media
                    .iter()
                    .filter(|m| m.tier == tier)
                    .filter(|m| m.fits(req.block_size))
                    .filter(|m| !req.excluded_workers.contains(&m.worker))
                    .filter(|m| !used_media.contains(&m.media))
                    .filter(|m| !restrict_racks || racks.contains(&m.rack))
                    .filter(|m| !distinct_workers || !used_workers.contains(&m.worker))
                    .collect::<Vec<&MediaStats>>()
            };
            let candidates = {
                let strict = tier_media(true, true);
                if !strict.is_empty() {
                    strict
                } else {
                    let relaxed = tier_media(true, false);
                    if !relaxed.is_empty() {
                        relaxed
                    } else {
                        tier_media(false, false)
                    }
                }
            };
            let Some(&m) = candidates.as_slice().choose(&mut st.rng) else {
                continue;
            };
            used_media.insert(m.media);
            used_workers.insert(m.worker);
            placed.push(m.media);
        }
        if placed.is_empty() && !req.tier_pins.is_empty() {
            return Err(FsError::PlacementFailed("rule-based: no feasible media".into()));
        }
        Ok(placed)
    }
}

// ---------------------------------------------------------------------------
// HDFS default placement baselines (§7.2).
// ---------------------------------------------------------------------------

/// The HDFS default placement policy: first replica on the writer's node,
/// second on a different rack, third on the second replica's rack but a
/// different node, extras at random. Tier handling distinguishes the two
/// §7.2 configurations:
///
/// - **Original HDFS** (`hdd_only`): only the slowest non-volatile tier
///   (HDDs) is used.
/// - **HDFS with SSD** (`tier_blind`): every non-volatile medium is used,
///   chosen uniformly — HDFS sees the SSD as just another disk.
pub struct HdfsPolicy {
    tier_blind: bool,
    rng: Mutex<StdRng>,
}

impl HdfsPolicy {
    /// "Original HDFS": HDDs only.
    pub fn hdd_only(seed: u64) -> Self {
        Self { tier_blind: false, rng: Mutex::new(StdRng::seed_from_u64(seed)) }
    }

    /// "HDFS with SSD": tier-blind across non-volatile media.
    pub fn tier_blind(seed: u64) -> Self {
        Self { tier_blind: true, rng: Mutex::new(StdRng::seed_from_u64(seed)) }
    }

    /// The tier "Original HDFS" is restricted to: the slowest (by average
    /// write throughput) non-volatile tier, i.e. the spinning disks.
    fn hdd_tier(snap: &ClusterSnapshot) -> Option<TierId> {
        let mut best: Option<(f64, TierId)> = None;
        for t in 0..snap.num_tiers as u8 {
            if snap.volatile[t as usize] {
                continue;
            }
            let media: Vec<&MediaStats> = snap.media_in_tier(TierId(t)).collect();
            if media.is_empty() {
                continue;
            }
            let avg = media.iter().map(|m| m.write_thru).sum::<f64>() / media.len() as f64;
            if best.is_none_or(|(b, _)| avg < b) {
                best = Some((avg, TierId(t)));
            }
        }
        best.map(|(_, t)| t)
    }

    fn eligible<'a>(
        &self,
        snap: &'a ClusterSnapshot,
        req: &PlacementRequest,
        hdd: Option<TierId>,
    ) -> Vec<&'a MediaStats> {
        snap.media
            .iter()
            .filter(|m| m.fits(req.block_size))
            .filter(|m| !req.excluded_workers.contains(&m.worker))
            .filter(|m| !snap.volatile[m.tier.0 as usize])
            .filter(|m| match (self.tier_blind, hdd) {
                (true, _) => true,
                (false, Some(t)) => m.tier == t,
                (false, None) => false,
            })
            .collect()
    }
}

impl PlacementPolicy for HdfsPolicy {
    fn name(&self) -> &'static str {
        if self.tier_blind {
            "HDFS with SSD"
        } else {
            "Original HDFS"
        }
    }

    fn place(&self, snap: &ClusterSnapshot, req: &PlacementRequest) -> Result<Vec<MediaId>> {
        let mut rng = self.rng.lock();
        let hdd = Self::hdd_tier(snap);
        let eligible = self.eligible(snap, req, hdd);
        if eligible.is_empty() {
            return Err(FsError::PlacementFailed(format!("{}: no eligible media", self.name())));
        }
        let index = snap.media_index();
        let mut used_media: HashSet<MediaId> = req.existing.iter().copied().collect();
        let mut used_workers: Vec<WorkerId> = Vec::new();
        for id in &req.existing {
            if let Some(m) = index.get(id) {
                if !used_workers.contains(&m.worker) {
                    used_workers.push(m.worker);
                }
            }
        }

        let mut placed = Vec::new();
        let r = req.tier_pins.len();
        for i in 0..r {
            // Candidate workers by the HDFS pipeline rules.
            let replica_no = used_workers.len(); // counts existing + placed
            let want_worker: Box<dyn Fn(&MediaStats) -> bool> = match replica_no {
                0 => {
                    if let ClientLocation::OnWorker(w) = req.client {
                        Box::new(move |m: &MediaStats| m.worker == w)
                    } else {
                        Box::new(|_: &MediaStats| true)
                    }
                }
                1 => {
                    let first_rack = index.get(&placed[0]).map(|m| m.rack).or_else(|| {
                        used_workers.first().and_then(|w| snap.worker_stats(*w)).map(|w| w.rack)
                    });
                    match first_rack {
                        Some(rack) => Box::new(move |m: &MediaStats| m.rack != rack),
                        None => Box::new(|_: &MediaStats| true),
                    }
                }
                2 => {
                    let second = used_workers.last().copied();
                    let second_rack = second.and_then(|w| snap.worker_stats(w)).map(|w| w.rack);
                    match (second, second_rack) {
                        (Some(w2), Some(rack)) => {
                            Box::new(move |m: &MediaStats| m.rack == rack && m.worker != w2)
                        }
                        _ => Box::new(|_: &MediaStats| true),
                    }
                }
                _ => Box::new(|_: &MediaStats| true),
            };

            let pick_from = |pred: &dyn Fn(&MediaStats) -> bool,
                             used_media: &HashSet<MediaId>,
                             used_workers: &[WorkerId],
                             rng: &mut StdRng| {
                let strict: Vec<&&MediaStats> = eligible
                    .iter()
                    .filter(|m| pred(m))
                    .filter(|m| !used_media.contains(&m.media))
                    .filter(|m| !used_workers.contains(&m.worker))
                    .collect();
                if let Some(&&m) = strict.as_slice().choose(rng) {
                    return Some(m);
                }
                // Fallback: any unused worker, then any unused medium.
                let any_worker: Vec<&&MediaStats> = eligible
                    .iter()
                    .filter(|m| !used_media.contains(&m.media))
                    .filter(|m| !used_workers.contains(&m.worker))
                    .collect();
                if let Some(&&m) = any_worker.as_slice().choose(rng) {
                    return Some(m);
                }
                let any: Vec<&&MediaStats> =
                    eligible.iter().filter(|m| !used_media.contains(&m.media)).collect();
                any.as_slice().choose(rng).map(|&&m| m)
            };

            let Some(m) = pick_from(&*want_worker, &used_media, &used_workers, &mut rng) else {
                continue;
            };
            used_media.insert(m.media);
            if !used_workers.contains(&m.worker) {
                used_workers.push(m.worker);
            }
            placed.push(m.media);
            let _ = i;
        }
        if placed.is_empty() && r > 0 {
            return Err(FsError::PlacementFailed(format!("{}: nothing placeable", self.name())));
        }
        Ok(placed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::testutil::{paper_like, snapshot};
    use octopus_common::StorageTier;

    fn moop() -> GreedyPolicy {
        GreedyPolicy::moop(PolicyConfig::default())
    }

    fn moop_mem() -> GreedyPolicy {
        let cfg = PolicyConfig { memory_placement_enabled: true, ..PolicyConfig::default() };
        GreedyPolicy::moop(cfg)
    }

    fn stats_of<'a>(snap: &'a ClusterSnapshot, ids: &[MediaId]) -> Vec<&'a MediaStats> {
        ids.iter().map(|id| snap.media_stats(*id).unwrap()).collect()
    }

    #[test]
    fn moop_places_three_distinct_workers_two_racks() {
        let snap = paper_like();
        let req = PlacementRequest::unspecified(3, 128 << 20, ClientLocation::OffCluster);
        let placed = moop().place(&snap, &req).unwrap();
        assert_eq!(placed.len(), 3);
        let chosen = stats_of(&snap, &placed);
        let mut workers: Vec<_> = chosen.iter().map(|m| m.worker).collect();
        workers.dedup();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 3, "replicas must land on distinct workers");
        let mut racks: Vec<_> = chosen.iter().map(|m| m.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        assert_eq!(racks.len(), 2, "fault tolerance wants exactly two racks");
        // Memory disabled by default — nothing volatile.
        assert!(chosen.iter().all(|m| m.tier != StorageTier::Memory.id()));
    }

    #[test]
    fn excluded_workers_never_host_replicas() {
        let snap = paper_like();
        // Every policy must honor the exclusion list a recovering pipeline
        // sends (§3.1), even when the excluded worker is the client-local
        // favorite.
        let mut req =
            PlacementRequest::unspecified(3, 128 << 20, ClientLocation::OnWorker(WorkerId(4)));
        req.excluded_workers = vec![WorkerId(4), WorkerId(0)];
        let policies: Vec<Box<dyn PlacementPolicy>> = vec![
            Box::new(moop()),
            Box::new(RuleBasedPolicy::new(PolicyConfig::default(), 7)),
            Box::new(HdfsPolicy::tier_blind(7)),
        ];
        for p in policies {
            let placed = p.place(&snap, &req).unwrap();
            assert!(!placed.is_empty());
            for m in stats_of(&snap, &placed) {
                assert!(
                    !req.excluded_workers.contains(&m.worker),
                    "replica landed on excluded {}",
                    m.worker
                );
            }
        }
    }

    #[test]
    fn moop_respects_tier_pins() {
        let snap = paper_like();
        let rv = ReplicationVector::msh(1, 1, 1);
        let req = PlacementRequest::from_vector(rv, 128 << 20, ClientLocation::OffCluster);
        let placed = moop().place(&snap, &req).unwrap();
        let chosen = stats_of(&snap, &placed);
        let tiers: Vec<_> = chosen.iter().map(|m| m.tier.0).collect();
        assert_eq!(tiers, vec![0, 1, 2], "pinned tiers in slot order");
    }

    #[test]
    fn moop_prefers_client_local_first_replica() {
        let snap = paper_like();
        let req =
            PlacementRequest::unspecified(3, 128 << 20, ClientLocation::OnWorker(WorkerId(4)));
        let placed = moop().place(&snap, &req).unwrap();
        let first = snap.media_stats(placed[0]).unwrap();
        assert_eq!(first.worker, WorkerId(4));
    }

    #[test]
    fn moop_second_replica_leaves_first_rack() {
        let snap = paper_like();
        let req =
            PlacementRequest::unspecified(2, 128 << 20, ClientLocation::OnWorker(WorkerId(0)));
        let placed = moop().place(&snap, &req).unwrap();
        let chosen = stats_of(&snap, &placed);
        assert_ne!(chosen[0].rack, chosen[1].rack);
    }

    #[test]
    fn moop_skips_full_media() {
        // All SSDs full: a pinned-SSD replica cannot be placed, but the
        // HDD one still is.
        let mb = 1048576.0;
        let snap = snapshot(
            3,
            2,
            1,
            (1 << 30, 1 << 30, 1900.0 * mb),
            (1 << 30, 0, 340.0 * mb), // SSD remaining = 0
            (1 << 30, 1 << 30, 126.0 * mb),
        );
        let rv = ReplicationVector::msh(0, 1, 1);
        let req = PlacementRequest::from_vector(rv, 1 << 20, ClientLocation::OffCluster);
        let placed = moop().place(&snap, &req).unwrap();
        assert_eq!(placed.len(), 1);
        assert_eq!(snap.media_stats(placed[0]).unwrap().tier, StorageTier::Hdd.id());
    }

    #[test]
    fn moop_memory_disabled_excludes_volatile_for_unspecified() {
        let snap = paper_like();
        let req = PlacementRequest::unspecified(6, 1 << 20, ClientLocation::OffCluster);
        let placed = moop().place(&snap, &req).unwrap();
        for m in stats_of(&snap, &placed) {
            assert_ne!(m.tier, StorageTier::Memory.id());
        }
        // But an explicit pin overrides the default.
        let rv = ReplicationVector::msh(1, 0, 0);
        let req = PlacementRequest::from_vector(rv, 1 << 20, ClientLocation::OffCluster);
        let placed = moop().place(&snap, &req).unwrap();
        assert_eq!(stats_of(&snap, &placed)[0].tier, StorageTier::Memory.id());
    }

    #[test]
    fn moop_memory_cap_is_one_third() {
        let snap = paper_like();
        let req = PlacementRequest::unspecified(3, 1 << 20, ClientLocation::OffCluster);
        let placed = moop_mem().place(&snap, &req).unwrap();
        let vol =
            stats_of(&snap, &placed).iter().filter(|m| m.tier == StorageTier::Memory.id()).count();
        assert!(vol <= 1, "at most ⌊3/3⌋ = 1 memory replica, got {vol}");

        // With 6 replicas the cap is 2.
        let req = PlacementRequest::unspecified(6, 1 << 20, ClientLocation::OffCluster);
        let placed = moop_mem().place(&snap, &req).unwrap();
        let vol =
            stats_of(&snap, &placed).iter().filter(|m| m.tier == StorageTier::Memory.id()).count();
        assert!(vol <= 2);
    }

    #[test]
    fn moop_uniqueness_constraint() {
        let snap = paper_like();
        let req = PlacementRequest::unspecified(10, 1 << 20, ClientLocation::OffCluster);
        let placed = moop().place(&snap, &req).unwrap();
        let mut ids = placed.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), placed.len(), "no medium hosts the same block twice");
    }

    #[test]
    fn moop_accounts_existing_replicas() {
        let snap = paper_like();
        // Existing replica on worker 0's HDD; ask for one more.
        let existing = snap
            .media
            .iter()
            .find(|m| m.worker == WorkerId(0) && m.tier == StorageTier::Hdd.id())
            .unwrap()
            .media;
        let mut req = PlacementRequest::unspecified(1, 1 << 20, ClientLocation::OffCluster);
        req.existing = vec![existing];
        let placed = moop().place(&snap, &req).unwrap();
        assert_eq!(placed.len(), 1);
        let m = snap.media_stats(placed[0]).unwrap();
        assert_ne!(m.media, existing);
        // Rack pruning: the new replica should leave the existing rack.
        assert_ne!(m.rack, snap.media_stats(existing).unwrap().rack);
    }

    #[test]
    fn moop_fails_when_nothing_feasible() {
        let mb = 1048576.0;
        let snap =
            snapshot(2, 1, 1, (100, 0, 1900.0 * mb), (100, 0, 340.0 * mb), (100, 0, 126.0 * mb));
        let req = PlacementRequest::unspecified(1, 1 << 20, ClientLocation::OffCluster);
        assert!(matches!(moop().place(&snap, &req), Err(FsError::PlacementFailed(_))));
    }

    #[test]
    fn tm_policy_picks_fastest_tier() {
        let snap = paper_like();
        let cfg = PolicyConfig { memory_placement_enabled: true, ..PolicyConfig::default() };
        let tm = GreedyPolicy::single(Objective::ThroughputMax, cfg);
        let req = PlacementRequest::unspecified(3, 1 << 20, ClientLocation::OffCluster);
        let placed = tm.place(&snap, &req).unwrap();
        let chosen = stats_of(&snap, &placed);
        // The pure-TM ablation runs uncapped (§7.2: TM "heavily exploits
        // the Memory tier"): all three replicas land in memory.
        for m in &chosen {
            assert_eq!(m.tier, StorageTier::Memory.id());
        }
        // And tie-breaking spreads them over distinct workers.
        let mut workers: Vec<_> = chosen.iter().map(|m| m.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 3);
    }

    #[test]
    fn db_policy_picks_highest_remaining_fraction() {
        let mb = 1048576.0;
        // HDDs have the highest remaining fraction.
        let snap = snapshot(
            3,
            2,
            1,
            (100, 10, 1900.0 * mb),
            (100, 50, 340.0 * mb),
            (1000, 990, 126.0 * mb),
        );
        let db = GreedyPolicy::single(Objective::DataBalancing, PolicyConfig::default());
        let req = PlacementRequest::unspecified(1, 1, ClientLocation::OffCluster);
        let placed = db.place(&snap, &req).unwrap();
        assert_eq!(snap.media_stats(placed[0]).unwrap().tier, StorageTier::Hdd.id());
    }

    #[test]
    fn lb_policy_avoids_busy_media() {
        let mut snap = paper_like();
        // Make every medium busy except one SSD.
        for m in snap.media.iter_mut() {
            m.nr_conn = 5;
        }
        let target = snap
            .media
            .iter()
            .position(|m| m.tier == StorageTier::Ssd.id() && m.worker == WorkerId(3))
            .unwrap();
        snap.media[target].nr_conn = 0;
        let lb = GreedyPolicy::single(Objective::LoadBalancing, PolicyConfig::default());
        let req = PlacementRequest::unspecified(1, 1 << 20, ClientLocation::OffCluster);
        let placed = lb.place(&snap, &req).unwrap();
        assert_eq!(placed[0], snap.media[target].media);
    }

    #[test]
    fn ft_policy_spreads_tiers_nodes_racks() {
        let snap = paper_like();
        let cfg = PolicyConfig { memory_placement_enabled: true, ..PolicyConfig::default() };
        let ft = GreedyPolicy::single(Objective::FaultTolerance, cfg);
        let req = PlacementRequest::unspecified(3, 1 << 20, ClientLocation::OffCluster);
        let placed = ft.place(&snap, &req).unwrap();
        let chosen = stats_of(&snap, &placed);
        let mut tiers: Vec<_> = chosen.iter().map(|m| m.tier).collect();
        tiers.sort_unstable();
        tiers.dedup();
        assert_eq!(tiers.len(), 3, "FT uses all three tiers");
        let mut workers: Vec<_> = chosen.iter().map(|m| m.worker).collect();
        workers.sort_unstable();
        workers.dedup();
        assert_eq!(workers.len(), 3);
    }

    #[test]
    fn rule_based_round_robins_tiers_within_two_racks() {
        let snap = paper_like();
        let cfg = PolicyConfig { memory_placement_enabled: true, ..PolicyConfig::default() };
        let rb = RuleBasedPolicy::new(cfg, 42);
        let req = PlacementRequest::unspecified(3, 1 << 20, ClientLocation::OffCluster);
        let placed = rb.place(&snap, &req).unwrap();
        assert_eq!(placed.len(), 3);
        let chosen = stats_of(&snap, &placed);
        let mut tiers: Vec<_> = chosen.iter().map(|m| m.tier).collect();
        tiers.sort_unstable();
        tiers.dedup();
        assert_eq!(tiers.len(), 3, "round-robin covers each tier once for r=3");
        let mut racks: Vec<_> = chosen.iter().map(|m| m.rack).collect();
        racks.sort_unstable();
        racks.dedup();
        assert!(racks.len() <= 2);
    }

    #[test]
    fn rule_based_rotates_starting_tier_across_blocks() {
        let snap = paper_like();
        let cfg = PolicyConfig { memory_placement_enabled: true, ..PolicyConfig::default() };
        let rb = RuleBasedPolicy::new(cfg, 42);
        let req = PlacementRequest::unspecified(1, 1 << 20, ClientLocation::OffCluster);
        let t1 = stats_of(&snap, &rb.place(&snap, &req).unwrap())[0].tier;
        let t2 = stats_of(&snap, &rb.place(&snap, &req).unwrap())[0].tier;
        let t3 = stats_of(&snap, &rb.place(&snap, &req).unwrap())[0].tier;
        let mut ts = vec![t1, t2, t3];
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(ts.len(), 3, "consecutive blocks rotate through the tiers");
    }

    #[test]
    fn hdfs_hdd_only_uses_slowest_tier() {
        let snap = paper_like();
        let p = HdfsPolicy::hdd_only(7);
        let req = PlacementRequest::unspecified(3, 1 << 20, ClientLocation::OffCluster);
        let placed = p.place(&snap, &req).unwrap();
        for m in stats_of(&snap, &placed) {
            assert_eq!(m.tier, StorageTier::Hdd.id());
        }
    }

    #[test]
    fn hdfs_tier_blind_mixes_ssd_and_hdd() {
        let snap = paper_like();
        let p = HdfsPolicy::tier_blind(7);
        let mut tiers_seen = HashSet::new();
        for _ in 0..40 {
            let req = PlacementRequest::unspecified(3, 1 << 20, ClientLocation::OffCluster);
            for m in stats_of(&snap, &p.place(&snap, &req).unwrap()) {
                assert_ne!(m.tier, StorageTier::Memory.id(), "HDFS never uses memory");
                tiers_seen.insert(m.tier);
            }
        }
        assert!(tiers_seen.contains(&StorageTier::Ssd.id()));
        assert!(tiers_seen.contains(&StorageTier::Hdd.id()));
    }

    #[test]
    fn hdfs_pipeline_topology_rules() {
        let snap = paper_like();
        let p = HdfsPolicy::hdd_only(123);
        let req = PlacementRequest::unspecified(3, 1 << 20, ClientLocation::OnWorker(WorkerId(2)));
        for _ in 0..10 {
            let placed = p.place(&snap, &req).unwrap();
            let chosen = stats_of(&snap, &placed);
            assert_eq!(chosen[0].worker, WorkerId(2), "first replica is writer-local");
            assert_ne!(chosen[1].rack, chosen[0].rack, "second replica off-rack");
            assert_eq!(chosen[2].rack, chosen[1].rack, "third shares second's rack");
            assert_ne!(chosen[2].worker, chosen[1].worker);
        }
    }

    #[test]
    fn greedy_close_to_exhaustive_optimum() {
        // Ablation groundwork: on a small cluster, the greedy MOOP solution
        // scores within a small factor of the exhaustive optimum.
        let mb = 1048576.0;
        let snap = snapshot(
            3,
            2,
            1,
            (100 << 20, 80 << 20, 1900.0 * mb),
            (200 << 20, 150 << 20, 340.0 * mb),
            (400 << 20, 300 << 20, 126.0 * mb),
        );
        let cfg = PolicyConfig { memory_placement_enabled: true, ..PolicyConfig::default() };
        let policy = GreedyPolicy::moop(cfg);
        let req = PlacementRequest::unspecified(3, 1 << 20, ClientLocation::OffCluster);
        let placed = policy.place(&snap, &req).unwrap();

        let refs: Vec<&MediaStats> = snap.media.iter().collect();
        let ctx = ObjectiveContext::new(&refs, 1 << 20, 3, 3, 2);
        let greedy_score = score(&stats_of(&snap, &placed), &ctx, &Objective::ALL);

        // Exhaustive search over all 3-subsets.
        let mut best = f64::INFINITY;
        let n = refs.len();
        for i in 0..n {
            for j in (i + 1)..n {
                for l in (j + 1)..n {
                    let s = score(&[refs[i], refs[j], refs[l]], &ctx, &Objective::ALL);
                    best = best.min(s);
                }
            }
        }
        assert!(greedy_score <= best * 1.5 + 1e-9, "greedy {greedy_score} vs exhaustive {best}");
    }

    #[test]
    fn audit_rounds_record_argmin_candidates() {
        let snap = paper_like();
        let req = PlacementRequest::unspecified(3, 128 << 20, ClientLocation::OffCluster);
        let (placed, rounds) = moop().place_with_audit(&snap, &req).unwrap();
        assert_eq!(placed.len(), 3);
        assert_eq!(rounds.len(), 3, "one round per replica slot");
        for (i, round) in rounds.iter().enumerate() {
            assert_eq!(round.replica_index, i as u32);
            assert_eq!(round.tier_pin, None);
            assert_eq!(round.chosen_media, Some(placed[i]));
            assert!(!round.candidates.is_empty());
            let chosen: Vec<_> = round.candidates.iter().filter(|c| c.chosen).collect();
            assert_eq!(chosen.len(), 1);
            assert_eq!(chosen[0].media, placed[i]);
            // The winner is the argmin of the recorded Eq. 11 scores,
            // within the engine's tie-break epsilon.
            let min = round.candidates.iter().map(|c| c.total).fold(f64::INFINITY, f64::min);
            let eps = 1e-9 * (1.0 + min.abs().min(1e12));
            assert!(
                chosen[0].total <= min + eps,
                "chosen {} vs min {} in round {i}",
                chosen[0].total,
                min
            );
        }
        // Audit and plain placement agree when the RNG state matches.
        let audited = GreedyPolicy::moop(PolicyConfig::default());
        let plain = GreedyPolicy::moop(PolicyConfig::default());
        let (a, _) = audited.place_with_audit(&snap, &req).unwrap();
        let p = plain.place_with_audit(&snap, &req).map(|(m, _)| m).unwrap();
        assert_eq!(a, p);
    }

    #[test]
    fn baseline_policies_audit_empty_rounds() {
        let snap = paper_like();
        let req = PlacementRequest::unspecified(3, 1 << 20, ClientLocation::OffCluster);
        let rb = RuleBasedPolicy::new(PolicyConfig::default(), 7);
        let (placed, rounds) = rb.place_with_audit(&snap, &req).unwrap();
        assert!(!placed.is_empty());
        assert!(rounds.is_empty(), "rule-based has no scored model to audit");
    }

    #[test]
    fn build_factory_constructs_every_kind() {
        let cfg = PolicyConfig::default();
        for kind in [
            PlacementPolicyKind::Moop,
            PlacementPolicyKind::DataBalancing,
            PlacementPolicyKind::LoadBalancing,
            PlacementPolicyKind::FaultTolerance,
            PlacementPolicyKind::ThroughputMax,
            PlacementPolicyKind::RuleBased,
            PlacementPolicyKind::HdfsHddOnly,
            PlacementPolicyKind::HdfsTierBlind,
        ] {
            let p = build_placement_policy(kind, &cfg, 1);
            assert!(!p.name().is_empty());
            let snap = paper_like();
            let req = PlacementRequest::unspecified(3, 1 << 20, ClientLocation::OffCluster);
            let placed = p.place(&snap, &req).unwrap();
            assert!(!placed.is_empty());
        }
    }
}
