//! Task-level execution simulation of Hadoop MapReduce, Spark, and the
//! Pegasus graph-mining system over OctopusFS.
//!
//! The paper's end-to-end experiments (§7.5, §7.6) run *unmodified*
//! analytics platforms over HDFS and OctopusFS and measure workload
//! execution time. The mechanism behind the speedups is entirely in the
//! file system: input blocks land on (and are read from) faster tiers, and
//! chained-job intermediate data benefits the most. This crate reproduces
//! that mechanism with a task-level model:
//!
//! - a **job** is map tasks (one per input block, scheduled with replica
//!   locality onto per-node task slots), a shuffle (all-to-all network
//!   transfers), and reduce tasks (CPU + DFS output write);
//! - **Hadoop** chains jobs through the DFS (job *i*'s output is job
//!   *i+1*'s input) — every hop through OctopusFS benefits;
//! - **Spark** keeps chained intermediate data in executor memory, so only
//!   the initial read and final write touch the DFS — exactly why the
//!   paper observes smaller (but still real) gains for Spark;
//! - **Pegasus** is an iterative Hadoop workload re-reading its graph
//!   input every iteration, with the two §7.6 optimizations (prefetch the
//!   reused dataset into the Memory tier; pin one copy of short-lived
//!   intermediate data in memory) expressed through the real
//!   `setReplication`/creation-time replication-vector APIs.
//!
//! All I/O flows through [`octopus_core::SimCluster`] — the same master,
//! policies, and flow-level contention model as the microbenchmarks.

pub mod engine;
pub mod runner;
pub mod workloads;

pub use engine::{EngineConfig, JobSpec, JobStats, Platform};
pub use runner::{run_hibench, run_pegasus, FsMode, PegasusMode};
pub use workloads::{hibench_workloads, pegasus_workloads, HiBenchWorkload, PegasusWorkload};
