//! The task execution engine: locality-aware slot scheduling of map and
//! reduce tasks over a [`SimCluster`].

use std::collections::HashMap;

use octopus_common::{ClientLocation, FsError, ReplicationVector, Result, WorkerId, MB};
use octopus_core::{JobId, SimCluster, SimEvent};

/// CPU inflation applied to Spark tasks relative to Hadoop's for the same
/// logical work (JVM object churn, RDD serialization). Calibration knob
/// for the §7.5 reproduction; see DESIGN.md.
pub const SPARK_CPU_FACTOR: f64 = 2.5;

/// Which platform semantics to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Platform {
    /// Chained jobs pass data through the DFS.
    Hadoop,
    /// Chained jobs keep intermediate data in executor memory; only the
    /// first read and last write touch the DFS.
    Spark,
}

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Concurrent task slots per worker node (the paper's nodes have
    /// 8 cores; 4 concurrent containers is a typical Hadoop setup).
    pub slots_per_node: usize,
    /// Replication vector for job/chain outputs.
    pub output_rv: ReplicationVector,
    /// Replication vector for intermediate (chained) outputs.
    pub intermediate_rv: ReplicationVector,
    /// Pipeline task I/O with task CPU (Spark-style execution: stage time
    /// = max(io, cpu) instead of io + cpu, for map reads and reduce
    /// output writes alike).
    pub pipelined_maps: bool,
    /// Multiplier on all task CPU costs (Spark's JVM/RDD serialization
    /// overhead makes its tasks more CPU-bound than Hadoop's for the same
    /// logical work, diluting the share of time the file system can
    /// improve — the paper's "lesser benefits for Spark are expected").
    pub cpu_factor: f64,
    /// Tier-aware task scheduling (paper §6, "MapReduce Task Scheduling"):
    /// when true, map tasks prefer the replica node whose copy sits on the
    /// fastest tier (the retrieval-policy ordering); when false —
    /// unmodified-Hadoop semantics — any replica-local node is equally
    /// good and ties break by worker id.
    pub tier_aware_scheduling: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            slots_per_node: 4,
            output_rv: ReplicationVector::from_replication_factor(3),
            intermediate_rv: ReplicationVector::from_replication_factor(3),
            pipelined_maps: false,
            cpu_factor: 1.0,
            tier_aware_scheduling: false,
        }
    }
}

/// One MapReduce-style job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// DFS input paths (every block of every input becomes a map task).
    pub input_paths: Vec<String>,
    /// DFS output directory (reducers write `part-<r>` files).
    pub output_path: String,
    /// Map CPU seconds per MB of input.
    pub map_cpu_secs_per_mb: f64,
    /// Reduce CPU seconds per MB of shuffled data.
    pub reduce_cpu_secs_per_mb: f64,
    /// Shuffled bytes as a fraction of input bytes.
    pub shuffle_ratio: f64,
    /// Total reduce output bytes.
    pub output_bytes: u64,
    /// Number of reduce tasks.
    pub reducers: u32,
}

/// Phase timings of one executed job (virtual seconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct JobStats {
    /// Map phase duration.
    pub map_secs: f64,
    /// Shuffle phase duration.
    pub shuffle_secs: f64,
    /// Reduce phase duration.
    pub reduce_secs: f64,
}

impl JobStats {
    /// Total job duration.
    pub fn total(&self) -> f64 {
        self.map_secs + self.shuffle_secs + self.reduce_secs
    }
}

/// One schedulable task: optional block read, CPU, optional DFS write.
/// With `pipelined` set, the read and the CPU run concurrently (Spark-style
/// pipelining: the stage finishes at max(read, cpu) instead of their sum).
struct Task {
    preferred: Vec<WorkerId>,
    read: Option<(String, u64)>,
    cpu_secs: f64,
    write: Option<(String, u64, ReplicationVector)>,
    pipelined: bool,
}

/// What a task still has to do after the currently outstanding jobs finish.
enum NextStage {
    Cpu,
    Write,
    Done,
}

struct TaskCtx {
    node: WorkerId,
    task: Task,
    outstanding: usize,
    next: NextStage,
}

/// Runs a set of tasks under per-node slot limits, preferring
/// replica-local placement. Returns when every task completes.
fn run_tasks(sim: &mut SimCluster, tasks: Vec<Task>, slots_per_node: usize) -> Result<f64> {
    let start = sim.now();
    let n = sim.master().snapshot().workers.len();
    if n == 0 {
        return Err(FsError::NotReady("no live workers".into()));
    }
    let mut free: Vec<usize> = vec![slots_per_node; n];
    let mut queue: Vec<(usize, Task)> = tasks
        .into_iter()
        .filter(|t| t.read.is_some() || t.cpu_secs > 0.0 || t.write.is_some())
        .enumerate()
        .collect();
    queue.reverse(); // pop() from the front of the original order
    let mut running: HashMap<JobId, usize> = HashMap::new();
    let mut ctxs: HashMap<usize, TaskCtx> = HashMap::new();
    let mut remaining = queue.len();
    if remaining == 0 {
        return Ok(0.0);
    }

    fn submit_write_stage(sim: &mut SimCluster, ctx: &TaskCtx) -> Result<Option<JobId>> {
        match &ctx.task.write {
            Some((path, bytes, rv)) => {
                Ok(Some(sim.submit_write(path, *bytes, *rv, ClientLocation::OnWorker(ctx.node))?))
            }
            None => Ok(None),
        }
    }

    // Launches the initial stage(s) of a task; returns the submitted jobs
    // and the follow-up stage.
    fn launch(
        sim: &mut SimCluster,
        task: &Task,
        node: WorkerId,
    ) -> Result<(Vec<JobId>, NextStage)> {
        let client = ClientLocation::OnWorker(node);
        match (&task.read, task.cpu_secs > 0.0) {
            (Some((path, offset)), true) if task.pipelined => {
                let read = sim.submit_block_read(path, *offset, client)?;
                let cpu = sim.submit_delay(task.cpu_secs);
                Ok((vec![read, cpu], NextStage::Write))
            }
            (Some((path, offset)), _) => {
                let read = sim.submit_block_read(path, *offset, client)?;
                let next = if task.cpu_secs > 0.0 { NextStage::Cpu } else { NextStage::Write };
                Ok((vec![read], next))
            }
            (None, true) if task.pipelined && task.write.is_some() => {
                let cpu = sim.submit_delay(task.cpu_secs);
                let (path, bytes, rv) = task.write.as_ref().expect("checked");
                let write = sim.submit_write(path, *bytes, *rv, client)?;
                Ok((vec![cpu, write], NextStage::Done))
            }
            (None, true) => Ok((vec![sim.submit_delay(task.cpu_secs)], NextStage::Write)),
            (None, false) => {
                // Write-only task (filtered tasks guarantee a write exists).
                Ok((Vec::new(), NextStage::Write))
            }
        }
    }

    // Admission: schedule queued tasks into free slots, locality first.
    macro_rules! schedule {
        () => {
            while !queue.is_empty() && free.iter().any(|&f| f > 0) {
                let (idx, task) = queue.pop().expect("non-empty");
                let node = task
                    .preferred
                    .iter()
                    .copied()
                    .find(|w| free.get(w.0 as usize).is_some_and(|&f| f > 0))
                    .unwrap_or_else(|| {
                        let (best, _) = free
                            .iter()
                            .enumerate()
                            .max_by_key(|&(_, &f)| f)
                            .expect("non-empty cluster");
                        WorkerId(best as u32)
                    });
                free[node.0 as usize] -= 1;
                let (jobs, next) = launch(sim, &task, node)?;
                if jobs.is_empty() {
                    // Immediate write-only task.
                    let ctx = TaskCtx { node, task, outstanding: 0, next: NextStage::Done };
                    let job = submit_write_stage(sim, &ctx)?
                        .expect("no-op tasks are filtered before scheduling");
                    running.insert(job, idx);
                    ctxs.insert(idx, TaskCtx { outstanding: 1, ..ctx });
                } else {
                    let outstanding = jobs.len();
                    for j in jobs {
                        running.insert(j, idx);
                    }
                    ctxs.insert(idx, TaskCtx { node, task, outstanding, next });
                }
            }
        };
    }

    schedule!();

    while remaining > 0 {
        let Some(ev) = sim.next_sim_event() else {
            return Err(FsError::Internal(format!(
                "simulator drained with {remaining} tasks outstanding"
            )));
        };
        let SimEvent::JobDone(job) = ev else { continue };
        let Some(idx) = running.remove(&job) else { continue };
        if let Some(report) = sim.report(job) {
            if let Some(f) = report.failed {
                return Err(FsError::Internal(format!("task {idx} failed: {f}")));
            }
        }
        enum Advance {
            Cpu(f64),
            Write,
            Done,
        }
        let advance = {
            let ctx = ctxs.get_mut(&idx).expect("running task has a context");
            ctx.outstanding -= 1;
            if ctx.outstanding > 0 {
                continue;
            }
            match ctx.next {
                NextStage::Cpu => {
                    ctx.next = NextStage::Write;
                    Advance::Cpu(ctx.task.cpu_secs)
                }
                NextStage::Write => {
                    ctx.next = NextStage::Done;
                    Advance::Write
                }
                NextStage::Done => Advance::Done,
            }
        };
        let finished = match advance {
            Advance::Cpu(secs) => {
                let j = sim.submit_delay(secs);
                running.insert(j, idx);
                ctxs.get_mut(&idx).expect("context").outstanding = 1;
                false
            }
            Advance::Write => {
                let job = {
                    let ctx = ctxs.get(&idx).expect("context");
                    submit_write_stage(sim, ctx)?
                };
                match job {
                    Some(j) => {
                        running.insert(j, idx);
                        ctxs.get_mut(&idx).expect("context").outstanding = 1;
                        false
                    }
                    None => true,
                }
            }
            Advance::Done => true,
        };
        if finished {
            let ctx = ctxs.remove(&idx).expect("context");
            free[ctx.node.0 as usize] += 1;
            remaining -= 1;
            schedule!();
        }
    }
    Ok(sim.now().secs_since(start))
}

/// Drives a set of already-submitted jobs to completion.
fn drain_jobs(sim: &mut SimCluster, mut outstanding: usize) -> Result<f64> {
    let start = sim.now();
    while outstanding > 0 {
        match sim.next_sim_event() {
            Some(SimEvent::JobDone(_)) => outstanding -= 1,
            Some(_) => {}
            None => {
                return Err(FsError::Internal("simulator drained mid-shuffle".into()));
            }
        }
    }
    Ok(sim.now().secs_since(start))
}

/// Executes one MapReduce job over the simulated cluster.
pub fn run_job(sim: &mut SimCluster, spec: &JobSpec, cfg: &EngineConfig) -> Result<JobStats> {
    let mut stats = JobStats::default();
    let nodes: Vec<WorkerId> = sim.master().snapshot().workers.iter().map(|w| w.worker).collect();
    if nodes.is_empty() {
        return Err(FsError::NotReady("no live workers".into()));
    }

    // ---- Map phase -------------------------------------------------------
    let mut map_tasks = Vec::new();
    let mut input_bytes = 0u64;
    let mut node_input: HashMap<WorkerId, u64> = HashMap::new();
    for path in &spec.input_paths {
        let blocks =
            sim.master().get_file_block_locations(path, 0, u64::MAX, ClientLocation::OffCluster)?;
        for lb in blocks {
            input_bytes += lb.block.len;
            let mut preferred: Vec<WorkerId> = lb.locations.iter().map(|l| l.worker).collect();
            if !cfg.tier_aware_scheduling {
                // Unmodified Hadoop: any replica-local node is equivalent.
                preferred.sort_unstable();
            }
            // Approximate per-node input attribution by the first replica.
            if let Some(w) = preferred.first() {
                *node_input.entry(*w).or_insert(0) += lb.block.len;
            }
            map_tasks.push(Task {
                preferred,
                read: Some((path.clone(), lb.offset)),
                cpu_secs: cfg.cpu_factor
                    * spec.map_cpu_secs_per_mb
                    * (lb.block.len as f64 / MB as f64),
                write: None,
                pipelined: cfg.pipelined_maps,
            });
        }
    }
    stats.map_secs = run_tasks(sim, map_tasks, cfg.slots_per_node)?;

    // ---- Shuffle phase -----------------------------------------------------
    let shuffle_bytes = (input_bytes as f64 * spec.shuffle_ratio) as u64;
    let reducers = spec.reducers.max(1) as usize;
    let reduce_nodes: Vec<WorkerId> = (0..reducers).map(|r| nodes[r % nodes.len()]).collect();
    let mut transfers = 0usize;
    if shuffle_bytes > 0 {
        for (&map_node, &bytes) in &node_input {
            let from_node = (bytes as f64 / input_bytes.max(1) as f64) * shuffle_bytes as f64;
            let per_reducer = (from_node / reducers as f64) as u64;
            if per_reducer == 0 {
                continue;
            }
            for &rn in &reduce_nodes {
                sim.submit_transfer(map_node, rn, per_reducer);
                transfers += 1;
            }
        }
    }
    stats.shuffle_secs = drain_jobs(sim, transfers)?;

    // ---- Reduce phase --------------------------------------------------------
    sim.master().mkdir(&spec.output_path)?;
    let out_per_reducer = spec.output_bytes / reducers as u64;
    let reduce_cpu = cfg.cpu_factor
        * spec.reduce_cpu_secs_per_mb
        * (shuffle_bytes as f64 / reducers as f64 / MB as f64);
    let reduce_tasks: Vec<Task> = reduce_nodes
        .iter()
        .enumerate()
        .map(|(r, &node)| Task {
            preferred: vec![node],
            read: None,
            cpu_secs: reduce_cpu,
            write: (out_per_reducer > 0).then(|| {
                (format!("{}/part-{r}", spec.output_path), out_per_reducer, cfg.output_rv)
            }),
            pipelined: cfg.pipelined_maps,
        })
        .collect();
    stats.reduce_secs = run_tasks(sim, reduce_tasks, cfg.slots_per_node)?;

    Ok(stats)
}

/// Executes a chain of jobs with platform semantics. For Hadoop every job
/// runs fully (through the DFS). For Spark, jobs after the first skip the
/// DFS read (cached RDD partitions) and only the final job writes output.
pub fn run_chain(
    sim: &mut SimCluster,
    chain: &[JobSpec],
    platform: Platform,
    cfg: &EngineConfig,
) -> Result<Vec<JobStats>> {
    let mut out = Vec::with_capacity(chain.len());
    for (i, spec) in chain.iter().enumerate() {
        let last = i == chain.len() - 1;
        match platform {
            Platform::Hadoop => {
                let mut cfg_i = cfg.clone();
                if !last {
                    cfg_i.output_rv = cfg.intermediate_rv;
                }
                out.push(run_job(sim, spec, &cfg_i)?);
            }
            Platform::Spark => {
                let mut spec_i = spec.clone();
                if i > 0 {
                    // Cached partitions: no DFS input read.
                    spec_i.input_paths = Vec::new();
                }
                if !last {
                    // Intermediate stays in memory: no DFS output.
                    spec_i.output_bytes = 0;
                }
                let stats = run_spark_stage(sim, &spec_i, spec, cfg, i > 0)?;
                out.push(stats);
            }
        }
    }
    Ok(out)
}

/// A Spark stage: like a job, but a cached-input stage replaces the map
/// read with pure CPU over the original input volume.
fn run_spark_stage(
    sim: &mut SimCluster,
    spec: &JobSpec,
    original: &JobSpec,
    cfg: &EngineConfig,
    cached: bool,
) -> Result<JobStats> {
    if !cached {
        let cfg =
            EngineConfig { pipelined_maps: true, cpu_factor: SPARK_CPU_FACTOR, ..cfg.clone() };
        return run_job(sim, spec, &cfg);
    }
    let mut stats = JobStats::default();
    let nodes: Vec<WorkerId> = sim.master().snapshot().workers.iter().map(|w| w.worker).collect();
    // CPU over cached partitions, spread evenly.
    let first_input = &original.input_paths;
    let mut input_bytes = 0u64;
    for p in first_input {
        input_bytes += sim.master().status(p).map(|s| s.len).unwrap_or(0);
    }
    let blocks = (input_bytes / (128 * MB)).max(nodes.len() as u64) as usize;
    let cpu_per_task = SPARK_CPU_FACTOR
        * original.map_cpu_secs_per_mb
        * (input_bytes as f64 / blocks as f64 / MB as f64);
    let tasks: Vec<Task> = (0..blocks)
        .map(|i| Task {
            preferred: vec![nodes[i % nodes.len()]],
            read: None,
            cpu_secs: cpu_per_task,
            write: None,
            pipelined: false,
        })
        .collect();
    stats.map_secs = run_tasks(sim, tasks, cfg.slots_per_node)?;

    // Shuffle over the network as usual.
    let shuffle_bytes = (input_bytes as f64 * original.shuffle_ratio) as u64;
    let reducers = original.reducers.max(1) as usize;
    let reduce_nodes: Vec<WorkerId> = (0..reducers).map(|r| nodes[r % nodes.len()]).collect();
    let mut transfers = 0;
    if shuffle_bytes > 0 {
        let per = shuffle_bytes / (nodes.len() * reducers) as u64;
        if per > 0 {
            for &m in &nodes {
                for &r in &reduce_nodes {
                    sim.submit_transfer(m, r, per);
                    transfers += 1;
                }
            }
        }
    }
    stats.shuffle_secs = drain_jobs(sim, transfers)?;

    // Reduce CPU (+ output write only when requested).
    sim.master().mkdir(&spec.output_path).ok();
    let out_per = spec.output_bytes / reducers as u64;
    let reduce_cpu = SPARK_CPU_FACTOR
        * original.reduce_cpu_secs_per_mb
        * (shuffle_bytes as f64 / reducers as f64 / MB as f64);
    let tasks: Vec<Task> = reduce_nodes
        .iter()
        .enumerate()
        .map(|(r, &node)| Task {
            preferred: vec![node],
            read: None,
            cpu_secs: reduce_cpu,
            write: (out_per > 0)
                .then(|| (format!("{}/part-{r}", spec.output_path), out_per, cfg.output_rv)),
            pipelined: true,
        })
        .collect();
    stats.reduce_secs = run_tasks(sim, tasks, cfg.slots_per_node)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_common::{ClientLocation, ClusterConfig, GB};
    use octopus_core::SimCluster;

    fn sim() -> SimCluster {
        let mut c = ClusterConfig::paper_cluster_scaled(0.05);
        c.block_size = 32 * MB;
        SimCluster::new(c).unwrap()
    }

    fn load_input(sim: &mut SimCluster, paths: &[&str], bytes: u64) {
        sim.master().mkdir("/in").unwrap();
        for (i, p) in paths.iter().enumerate() {
            sim.submit_write(
                p,
                bytes,
                ReplicationVector::from_replication_factor(3),
                ClientLocation::OnWorker(octopus_common::WorkerId(i as u32 % 9)),
            )
            .unwrap();
        }
        sim.run_to_completion();
    }

    fn spec(inputs: &[&str], out: &str) -> JobSpec {
        JobSpec {
            input_paths: inputs.iter().map(|s| s.to_string()).collect(),
            output_path: out.to_string(),
            map_cpu_secs_per_mb: 0.005,
            reduce_cpu_secs_per_mb: 0.005,
            shuffle_ratio: 0.5,
            output_bytes: 64 * MB,
            reducers: 6,
        }
    }

    #[test]
    fn run_job_produces_output_parts() {
        let mut s = sim();
        load_input(&mut s, &["/in/a", "/in/b"], GB / 4);
        let stats =
            run_job(&mut s, &spec(&["/in/a", "/in/b"], "/out"), &EngineConfig::default()).unwrap();
        assert!(stats.map_secs > 0.0);
        assert!(stats.shuffle_secs > 0.0);
        assert!(stats.reduce_secs > 0.0);
        assert!(stats.total() > 0.0);
        // Six reducers wrote six parts.
        let parts = s.master().list("/out").unwrap();
        assert_eq!(parts.len(), 6);
        let total: u64 = parts.iter().map(|e| e.len).sum();
        assert!((total as i64 - (64 * MB) as i64).abs() < 7, "output ≈ 64 MB");
    }

    #[test]
    fn hadoop_chain_passes_through_dfs() {
        let mut s = sim();
        load_input(&mut s, &["/in/a"], GB / 4);
        let mut j1 = spec(&["/in/a"], "/c/job0");
        let j2 = JobSpec {
            input_paths: (0..6).map(|r| format!("/c/job0/part-{r}")).collect(),
            output_path: "/c/job1".into(),
            ..spec(&[], "/c/job1")
        };
        j1.output_bytes = 128 * MB;
        let stats =
            run_chain(&mut s, &[j1, j2], Platform::Hadoop, &EngineConfig::default()).unwrap();
        assert_eq!(stats.len(), 2);
        // Job 1 read job 0's DFS output, so its map phase did real I/O.
        assert!(stats[1].map_secs > 0.0);
        assert_eq!(s.master().list("/c/job1").unwrap().len(), 6);
    }

    #[test]
    fn spark_chain_skips_intermediate_dfs_io() {
        // Same two-stage chain, Spark semantics: stage 1 must not create
        // job0 output parts in the DFS (cached in executor memory).
        let mut s = sim();
        load_input(&mut s, &["/in/a"], GB / 4);
        let j1 = spec(&["/in/a"], "/sp/job0");
        let j2 = JobSpec {
            input_paths: (0..6).map(|r| format!("/sp/job0/part-{r}")).collect(),
            output_path: "/sp/job1".into(),
            ..spec(&[], "/sp/job1")
        };
        let stats =
            run_chain(&mut s, &[j1, j2], Platform::Spark, &EngineConfig::default()).unwrap();
        assert_eq!(stats.len(), 2);
        // No intermediate parts were materialized.
        let job0 = s.master().list("/sp/job0");
        assert!(job0.is_err() || job0.unwrap().is_empty());
        // Final output exists.
        assert_eq!(s.master().list("/sp/job1").unwrap().len(), 6);
    }

    #[test]
    fn locality_prefers_replica_nodes() {
        // With free slots everywhere, every map task should read locally:
        // total map time ≈ blocks/slots waves of a local read + cpu.
        let mut s = sim();
        load_input(&mut s, &["/in/a"], GB / 4);
        let mut spec1 = spec(&["/in/a"], "/loc/out");
        spec1.shuffle_ratio = 0.0;
        spec1.output_bytes = 0;
        spec1.map_cpu_secs_per_mb = 0.0;
        let stats = run_job(&mut s, &spec1, &EngineConfig::default()).unwrap();
        // 8 blocks of 32 MB over 36 slots → one wave of local reads. A
        // local memory/SSD read of 32 MB takes well under a second; an
        // all-remote schedule would not finish this fast.
        assert!(stats.map_secs < 1.0, "map phase {:.2}s suggests remote reads", stats.map_secs);
    }

    #[test]
    fn empty_job_is_trivial() {
        let mut s = sim();
        let empty = JobSpec {
            input_paths: vec![],
            output_path: "/e".into(),
            map_cpu_secs_per_mb: 0.0,
            reduce_cpu_secs_per_mb: 0.0,
            shuffle_ratio: 0.0,
            output_bytes: 0,
            reducers: 2,
        };
        let stats = run_job(&mut s, &empty, &EngineConfig::default()).unwrap();
        assert_eq!(stats.map_secs, 0.0);
        assert_eq!(stats.shuffle_secs, 0.0);
    }
}
