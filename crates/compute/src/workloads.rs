//! Workload descriptors for the paper's end-to-end experiments.
//!
//! The nine HiBench workloads of §7.5 (micro benchmarks, OLAP queries,
//! machine-learning analytics) and the four Pegasus graph-mining workloads
//! of §7.6. The CPU/shuffle/output coefficients are calibration knobs: the
//! paper does not publish per-workload parameters, so these are chosen to
//! match each workload's published character (Sort is I/O-bound and
//! shuffle-heavy, Wordcount is map-CPU-bound with a small shuffle, the ML
//! workloads are iterative and chained, HADI produces ~18 GB of
//! intermediate data per iteration on a 3.3 GB graph, ...).

use octopus_common::{GB, MB};

use crate::engine::JobSpec;

/// One HiBench-style workload.
#[derive(Debug, Clone)]
pub struct HiBenchWorkload {
    /// Workload name as in Figure 6.
    pub name: &'static str,
    /// Category: "micro", "olap", or "ml".
    pub category: &'static str,
    /// Input dataset size in GB.
    pub input_gb: f64,
    /// Number of chained MapReduce jobs.
    pub jobs: u32,
    /// Map CPU seconds per MB of input.
    pub map_cpu_secs_per_mb: f64,
    /// Reduce CPU seconds per MB of shuffle input.
    pub reduce_cpu_secs_per_mb: f64,
    /// Shuffle volume as a fraction of input.
    pub shuffle_ratio: f64,
    /// Output volume as a fraction of input (per job).
    pub output_ratio: f64,
    /// Whether chained jobs re-read the original input (iterative ML).
    pub reread_input: bool,
    /// Reduce task count.
    pub reducers: u32,
}

impl HiBenchWorkload {
    /// Input bytes.
    pub fn input_bytes(&self) -> u64 {
        (self.input_gb * GB as f64) as u64
    }

    /// Expands the workload into its job chain. `input_paths` are the
    /// pre-generated input files; intermediate outputs are wired
    /// job-to-job under `/out/<name>/`.
    pub fn to_chain(&self, input_paths: &[String]) -> Vec<JobSpec> {
        let mut chain = Vec::with_capacity(self.jobs as usize);
        let out_bytes = (self.input_bytes() as f64 * self.output_ratio) as u64;
        let mut prev_outputs: Vec<String> = Vec::new();
        for j in 0..self.jobs {
            let mut inputs: Vec<String> = if j == 0 {
                input_paths.to_vec()
            } else if self.reread_input {
                let mut v = input_paths.to_vec();
                v.extend(prev_outputs.clone());
                v
            } else {
                prev_outputs.clone()
            };
            inputs.sort();
            let output_path = format!("/out/{}/job{}", self.name, j);
            let reducers = self.reducers;
            prev_outputs = (0..reducers).map(|r| format!("{output_path}/part-{r}")).collect();
            chain.push(JobSpec {
                input_paths: inputs,
                output_path,
                map_cpu_secs_per_mb: self.map_cpu_secs_per_mb,
                reduce_cpu_secs_per_mb: self.reduce_cpu_secs_per_mb,
                shuffle_ratio: self.shuffle_ratio,
                output_bytes: out_bytes.max(MB),
                reducers,
            });
        }
        chain
    }
}

/// The nine §7.5 workloads.
pub fn hibench_workloads() -> Vec<HiBenchWorkload> {
    vec![
        HiBenchWorkload {
            name: "Sort",
            category: "micro",
            input_gb: 12.0,
            jobs: 1,
            map_cpu_secs_per_mb: 0.002,
            reduce_cpu_secs_per_mb: 0.002,
            shuffle_ratio: 1.0,
            output_ratio: 1.0,
            reread_input: false,
            reducers: 18,
        },
        HiBenchWorkload {
            name: "Wordcount",
            category: "micro",
            input_gb: 12.0,
            jobs: 1,
            map_cpu_secs_per_mb: 0.020,
            reduce_cpu_secs_per_mb: 0.005,
            shuffle_ratio: 0.10,
            output_ratio: 0.05,
            reread_input: false,
            reducers: 18,
        },
        HiBenchWorkload {
            name: "Terasort",
            category: "micro",
            input_gb: 12.0,
            jobs: 1,
            map_cpu_secs_per_mb: 0.005,
            reduce_cpu_secs_per_mb: 0.005,
            shuffle_ratio: 1.0,
            output_ratio: 1.0,
            reread_input: false,
            reducers: 18,
        },
        HiBenchWorkload {
            name: "Scan",
            category: "olap",
            input_gb: 10.0,
            jobs: 1,
            map_cpu_secs_per_mb: 0.004,
            reduce_cpu_secs_per_mb: 0.001,
            shuffle_ratio: 0.20,
            output_ratio: 0.20,
            reread_input: false,
            reducers: 18,
        },
        HiBenchWorkload {
            name: "Join",
            category: "olap",
            input_gb: 10.0,
            jobs: 2,
            map_cpu_secs_per_mb: 0.006,
            reduce_cpu_secs_per_mb: 0.006,
            shuffle_ratio: 0.60,
            output_ratio: 0.30,
            reread_input: false,
            reducers: 18,
        },
        HiBenchWorkload {
            name: "Aggregation",
            category: "olap",
            input_gb: 10.0,
            jobs: 1,
            map_cpu_secs_per_mb: 0.006,
            reduce_cpu_secs_per_mb: 0.004,
            shuffle_ratio: 0.25,
            output_ratio: 0.08,
            reread_input: false,
            reducers: 18,
        },
        HiBenchWorkload {
            name: "Pagerank",
            category: "ml",
            input_gb: 6.0,
            jobs: 3,
            map_cpu_secs_per_mb: 0.008,
            reduce_cpu_secs_per_mb: 0.006,
            shuffle_ratio: 0.50,
            output_ratio: 0.50,
            reread_input: true,
            reducers: 18,
        },
        HiBenchWorkload {
            name: "Bayes",
            category: "ml",
            input_gb: 8.0,
            jobs: 2,
            map_cpu_secs_per_mb: 0.025,
            reduce_cpu_secs_per_mb: 0.010,
            shuffle_ratio: 0.35,
            output_ratio: 0.15,
            reread_input: true,
            reducers: 18,
        },
        HiBenchWorkload {
            name: "Kmeans",
            category: "ml",
            input_gb: 8.0,
            jobs: 3,
            map_cpu_secs_per_mb: 0.030,
            reduce_cpu_secs_per_mb: 0.004,
            shuffle_ratio: 0.05,
            output_ratio: 0.02,
            reread_input: true,
            reducers: 18,
        },
    ]
}

/// One Pegasus graph-mining workload (§7.6): GIM-V iterations over a
/// 2M-vertex, 3.3 GB graph.
#[derive(Debug, Clone)]
pub struct PegasusWorkload {
    /// Workload name as in Figure 7.
    pub name: &'static str,
    /// Graph size in GB (3.3 in the paper).
    pub graph_gb: f64,
    /// Number of iterations (all §7.6 workloads converge within four).
    pub iterations: u32,
    /// Intermediate bytes per iteration as a multiple of the graph size
    /// (HADI produces ~18 GB per iteration on the 3.3 GB graph).
    pub interm_ratio: f64,
    /// Map CPU seconds per MB.
    pub map_cpu_secs_per_mb: f64,
    /// Reduce CPU seconds per MB of shuffle.
    pub reduce_cpu_secs_per_mb: f64,
    /// Shuffle fraction of input.
    pub shuffle_ratio: f64,
}

impl PegasusWorkload {
    /// Graph bytes.
    pub fn graph_bytes(&self) -> u64 {
        (self.graph_gb * GB as f64) as u64
    }

    /// Intermediate bytes per iteration.
    pub fn interm_bytes(&self) -> u64 {
        (self.graph_bytes() as f64 * self.interm_ratio) as u64
    }
}

/// The four §7.6 workloads.
pub fn pegasus_workloads() -> Vec<PegasusWorkload> {
    vec![
        PegasusWorkload {
            name: "Pagerank",
            graph_gb: 3.3,
            iterations: 4,
            interm_ratio: 0.6,
            map_cpu_secs_per_mb: 0.006,
            reduce_cpu_secs_per_mb: 0.006,
            shuffle_ratio: 0.7,
        },
        PegasusWorkload {
            name: "ConComp",
            graph_gb: 3.3,
            iterations: 4,
            interm_ratio: 0.8,
            map_cpu_secs_per_mb: 0.006,
            reduce_cpu_secs_per_mb: 0.006,
            shuffle_ratio: 0.7,
        },
        PegasusWorkload {
            name: "HADI",
            graph_gb: 3.3,
            iterations: 4,
            interm_ratio: 5.4, // ≈18 GB of intermediate data per iteration
            map_cpu_secs_per_mb: 0.005,
            reduce_cpu_secs_per_mb: 0.005,
            shuffle_ratio: 0.9,
        },
        PegasusWorkload {
            name: "RWR",
            graph_gb: 3.3,
            iterations: 4,
            interm_ratio: 0.7,
            map_cpu_secs_per_mb: 0.007,
            reduce_cpu_secs_per_mb: 0.006,
            shuffle_ratio: 0.7,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_hibench_workloads_across_three_categories() {
        let w = hibench_workloads();
        assert_eq!(w.len(), 9);
        assert_eq!(w.iter().filter(|x| x.category == "micro").count(), 3);
        assert_eq!(w.iter().filter(|x| x.category == "olap").count(), 3);
        assert_eq!(w.iter().filter(|x| x.category == "ml").count(), 3);
    }

    #[test]
    fn chain_wiring() {
        let w = hibench_workloads().into_iter().find(|w| w.name == "Pagerank").unwrap();
        let chain = w.to_chain(&["/in/a".into(), "/in/b".into()]);
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0].input_paths, vec!["/in/a", "/in/b"]);
        // Iterative: job 1 reads the original input plus job 0's parts.
        assert!(chain[1].input_paths.contains(&"/in/a".to_string()));
        assert!(chain[1].input_paths.iter().any(|p| p.starts_with("/out/Pagerank/job0/part-")));
        assert_eq!(chain[1].input_paths.len(), 2 + w.reducers as usize);
    }

    #[test]
    fn non_iterative_chain_forwards_only_outputs() {
        let w = hibench_workloads().into_iter().find(|w| w.name == "Join").unwrap();
        let chain = w.to_chain(&["/in/x".into()]);
        assert_eq!(chain.len(), 2);
        assert!(chain[1].input_paths.iter().all(|p| p.starts_with("/out/Join/job0/")));
    }

    #[test]
    fn pegasus_hadi_intermediate_is_huge() {
        let hadi = pegasus_workloads().into_iter().find(|w| w.name == "HADI").unwrap();
        let gb = hadi.interm_bytes() as f64 / GB as f64;
        assert!((gb - 17.8).abs() < 0.5, "HADI intermediate ≈ 18 GB, got {gb:.1}");
    }
}
