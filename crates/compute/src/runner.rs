//! Experiment runners for §7.5 (HiBench over Hadoop/Spark) and §7.6
//! (Pegasus with controllability optimizations).

use octopus_common::config::{PlacementPolicyKind, RetrievalPolicyKind};
use octopus_common::{ClientLocation, ClusterConfig, ReplicationVector, Result, WorkerId};
use octopus_core::SimCluster;

use crate::engine::{run_chain, run_job, EngineConfig, JobSpec, Platform};
use crate::workloads::{HiBenchWorkload, PegasusWorkload};

/// Which file system the platform runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsMode {
    /// Baseline: HDFS default placement restricted to the HDD tier with
    /// locality-only retrieval (the stock setup of §7.5).
    Hdfs,
    /// OctopusFS with the default automated policies (MOOP placement,
    /// rate-based retrieval; memory disabled for unspecified replicas, as
    /// §3.3's default prescribes).
    OctopusFs,
}

/// The five Figure 7 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PegasusMode {
    /// Unmodified Pegasus over HDFS.
    Hdfs,
    /// Unmodified Pegasus over OctopusFS (automated policies only).
    Octopus,
    /// + prefetch the reused graph into the Memory tier.
    OctopusPrefetch,
    /// + pin one copy of intermediate data in the Memory tier.
    OctopusInterm,
    /// Both optimizations.
    OctopusBoth,
}

impl PegasusMode {
    /// All five, figure order.
    pub const ALL: [PegasusMode; 5] = [
        PegasusMode::Hdfs,
        PegasusMode::Octopus,
        PegasusMode::OctopusPrefetch,
        PegasusMode::OctopusInterm,
        PegasusMode::OctopusBoth,
    ];

    /// Label used in the figure.
    pub fn label(self) -> &'static str {
        match self {
            PegasusMode::Hdfs => "HDFS",
            PegasusMode::Octopus => "OctopusFS",
            PegasusMode::OctopusPrefetch => "OctopusFS+prefetch",
            PegasusMode::OctopusInterm => "OctopusFS+interm",
            PegasusMode::OctopusBoth => "OctopusFS+both",
        }
    }

    fn fs(self) -> FsMode {
        match self {
            PegasusMode::Hdfs => FsMode::Hdfs,
            _ => FsMode::OctopusFs,
        }
    }
}

/// The paper cluster configured for one file-system mode.
pub fn config_for(mode: FsMode) -> ClusterConfig {
    let mut c = ClusterConfig::paper_cluster();
    match mode {
        FsMode::Hdfs => {
            c.policy.placement = PlacementPolicyKind::HdfsHddOnly;
            c.policy.retrieval = RetrievalPolicyKind::HdfsLocality;
        }
        FsMode::OctopusFs => {
            c.policy.placement = PlacementPolicyKind::Moop;
            c.policy.retrieval = RetrievalPolicyKind::RateBased;
        }
    }
    c
}

/// Generates the input dataset: `parts` files written in parallel from the
/// workers (like a HiBench data-generation job). Not part of the measured
/// time. Returns the input paths.
fn generate_input(
    sim: &mut SimCluster,
    dir: &str,
    total_bytes: u64,
    parts: u32,
) -> Result<Vec<String>> {
    sim.master().mkdir(dir)?;
    let rv = ReplicationVector::from_replication_factor(3);
    let per = total_bytes / parts as u64;
    let mut paths = Vec::with_capacity(parts as usize);
    for p in 0..parts {
        let path = format!("{dir}/part-{p}");
        sim.submit_write(&path, per, rv, ClientLocation::OnWorker(WorkerId(p % 9)))?;
        paths.push(path);
    }
    sim.run_to_completion();
    Ok(paths)
}

/// Runs one HiBench workload on the given platform and file system,
/// returning the measured (virtual) execution time in seconds.
pub fn run_hibench(w: &HiBenchWorkload, platform: Platform, mode: FsMode) -> Result<f64> {
    let mut sim = SimCluster::new(config_for(mode))?;
    let inputs = generate_input(&mut sim, "/input", w.input_bytes(), 9)?;
    let chain = w.to_chain(&inputs);
    let cfg = EngineConfig::default();
    let t0 = sim.now();
    run_chain(&mut sim, &chain, platform, &cfg)?;
    Ok(sim.now().secs_since(t0))
}

/// Runs one Pegasus workload in the given mode, returning the measured
/// (virtual) execution time in seconds.
pub fn run_pegasus(w: &PegasusWorkload, mode: PegasusMode) -> Result<f64> {
    let mut sim = SimCluster::new(config_for(mode.fs()))?;
    let graph_paths = generate_input(&mut sim, "/graph", w.graph_bytes(), 9)?;

    let interm_rv = match mode {
        PegasusMode::OctopusInterm | PegasusMode::OctopusBoth => {
            // "store one copy in the Memory tier": 1 pinned memory replica,
            // 2 system-placed.
            ReplicationVector::msh(1, 0, 0).with_unspecified(2)
        }
        _ => ReplicationVector::from_replication_factor(3),
    };

    let t0 = sim.now();

    // Prefetch optimization: move one replica of the reused dataset into
    // memory. The move is asynchronous (§5) and overlaps with the first
    // iteration — only later iterations see the memory replica, which is
    // why the paper reports modest 3–7% gains for prefetching alone.
    if matches!(mode, PegasusMode::OctopusPrefetch | PegasusMode::OctopusBoth) {
        for p in &graph_paths {
            sim.master().set_replication(p, ReplicationVector::msh(1, 0, 2))?;
        }
        sim.pump_replication();
    }

    let cfg = EngineConfig {
        intermediate_rv: interm_rv,
        output_rv: interm_rv,
        ..EngineConfig::default()
    };

    let mut prev_parts: Vec<String> = Vec::new();
    for iter in 0..w.iterations {
        let mut inputs = graph_paths.clone();
        inputs.extend(prev_parts.clone());
        let output_path = format!("/pegasus/{}/iter{}", w.name, iter);
        let reducers = 18;
        let spec = JobSpec {
            input_paths: inputs,
            output_path: output_path.clone(),
            map_cpu_secs_per_mb: w.map_cpu_secs_per_mb,
            reduce_cpu_secs_per_mb: w.reduce_cpu_secs_per_mb,
            shuffle_ratio: w.shuffle_ratio,
            output_bytes: w.interm_bytes(),
            reducers,
        };
        run_job(&mut sim, &spec, &cfg)?;
        // Short-lived intermediate data: the previous iteration's output is
        // consumed and deleted (Pegasus cleans up between iterations).
        for p in &prev_parts {
            let _ = sim.master().delete(p, false);
        }
        prev_parts = (0..reducers).map(|r| format!("{output_path}/part-{r}")).collect();
    }
    Ok(sim.now().secs_since(t0))
}
