//! Directional end-to-end tests of the compute simulation: OctopusFS must
//! beat the HDFS baseline, Hadoop must benefit more than Spark, and the
//! Pegasus optimizations must compound — the qualitative claims of §7.5
//! and §7.6.

use octopus_compute::{
    hibench_workloads, pegasus_workloads, run_hibench, run_pegasus, FsMode, PegasusMode, Platform,
};

fn workload(name: &str) -> octopus_compute::HiBenchWorkload {
    hibench_workloads().into_iter().find(|w| w.name == name).unwrap()
}

#[test]
fn sort_octopus_beats_hdfs_on_hadoop() {
    let w = workload("Sort");
    let hdfs = run_hibench(&w, Platform::Hadoop, FsMode::Hdfs).unwrap();
    let octo = run_hibench(&w, Platform::Hadoop, FsMode::OctopusFs).unwrap();
    assert!(hdfs > 0.0 && octo > 0.0);
    assert!(octo < hdfs, "OctopusFS ({octo:.1}s) must beat HDFS ({hdfs:.1}s) on Sort");
}

#[test]
fn chained_workload_gains_more_on_hadoop_than_spark() {
    // Pagerank chains three jobs; Hadoop passes intermediates through the
    // DFS while Spark keeps them in memory, so OctopusFS helps Hadoop more
    // (the paper's Figure 6 asymmetry).
    let w = workload("Pagerank");
    let h_hdfs = run_hibench(&w, Platform::Hadoop, FsMode::Hdfs).unwrap();
    let h_octo = run_hibench(&w, Platform::Hadoop, FsMode::OctopusFs).unwrap();
    let s_hdfs = run_hibench(&w, Platform::Spark, FsMode::Hdfs).unwrap();
    let s_octo = run_hibench(&w, Platform::Spark, FsMode::OctopusFs).unwrap();
    let hadoop_gain = 1.0 - h_octo / h_hdfs;
    let spark_gain = 1.0 - s_octo / s_hdfs;
    assert!(hadoop_gain > 0.0, "hadoop gain {hadoop_gain:.3}");
    assert!(spark_gain >= 0.0, "spark gain {spark_gain:.3}");
    assert!(
        hadoop_gain > spark_gain,
        "hadoop gain {hadoop_gain:.3} must exceed spark gain {spark_gain:.3}"
    );
    // Spark itself is faster than Hadoop on the same FS (uses memory).
    assert!(s_hdfs < h_hdfs);
}

#[test]
fn cpu_bound_workload_gains_less_than_io_bound() {
    let sort = workload("Sort"); // I/O bound
    let kmeans = workload("Kmeans"); // CPU bound
    let gain = |w: &octopus_compute::HiBenchWorkload| {
        let hdfs = run_hibench(w, Platform::Hadoop, FsMode::Hdfs).unwrap();
        let octo = run_hibench(w, Platform::Hadoop, FsMode::OctopusFs).unwrap();
        1.0 - octo / hdfs
    };
    let g_sort = gain(&sort);
    let g_kmeans = gain(&kmeans);
    assert!(g_sort > g_kmeans, "sort gain {g_sort:.3} vs kmeans gain {g_kmeans:.3}");
    assert!(g_kmeans > 0.0);
}

#[test]
fn pegasus_modes_are_ordered() {
    // HADI has the largest intermediate volume → the intermediate-data
    // optimization must show clear additional gains.
    let w = pegasus_workloads().into_iter().find(|w| w.name == "HADI").unwrap();
    let hdfs = run_pegasus(&w, PegasusMode::Hdfs).unwrap();
    let octo = run_pegasus(&w, PegasusMode::Octopus).unwrap();
    let pre = run_pegasus(&w, PegasusMode::OctopusPrefetch).unwrap();
    let interm = run_pegasus(&w, PegasusMode::OctopusInterm).unwrap();
    let both = run_pegasus(&w, PegasusMode::OctopusBoth).unwrap();

    assert!(octo < hdfs, "OctopusFS {octo:.0}s vs HDFS {hdfs:.0}s");
    assert!(pre < octo, "prefetch {pre:.1}s must improve on plain {octo:.1}s");
    assert!(interm < octo, "interm {interm:.0}s must beat plain {octo:.0}s");
    assert!(both <= interm * 1.02, "both {both:.0}s ~ at least as good as interm");
    assert!(both < octo, "both {both:.0}s must beat plain {octo:.0}s");
}

#[test]
fn all_workloads_run_on_both_platforms() {
    // Smoke: every HiBench workload completes on both platforms over
    // OctopusFS with a sane, positive duration.
    for w in hibench_workloads() {
        let h = run_hibench(&w, Platform::Hadoop, FsMode::OctopusFs).unwrap();
        let s = run_hibench(&w, Platform::Spark, FsMode::OctopusFs).unwrap();
        assert!(h > 0.0 && h.is_finite(), "{}: hadoop {h}", w.name);
        assert!(s > 0.0 && s.is_finite(), "{}: spark {s}", w.name);
        // Paper: workloads ran 1..42 minutes; ours should land in a
        // broadly similar band (tens of seconds to an hour of virtual time).
        assert!(h < 3600.0, "{}: {h:.0}s looks runaway", w.name);
    }
}

#[test]
fn runs_are_deterministic() {
    let w = workload("Join");
    let a = run_hibench(&w, Platform::Hadoop, FsMode::OctopusFs).unwrap();
    let b = run_hibench(&w, Platform::Hadoop, FsMode::OctopusFs).unwrap();
    assert_eq!(a, b, "same seed, same virtual time");
}
