//! The OctopusFS master (paper §2.1).
//!
//! The master maintains the two metadata collections of the paper — the
//! *directory namespace* and the *block locations* — plus the cluster
//! statistics that feed the data-management policies:
//!
//! - [`autotier`]: configuration and decision records for the automated
//!   tiering planner ([`Master::autotier_scan`](master::Master::autotier_scan));
//! - [`namespace`]: the inode tree with files, directories, per-file
//!   replication vectors, and per-tier directory quotas;
//! - [`editlog`]: a durable, self-describing binary log of namespace
//!   mutations, with checkpointing for the backup master;
//! - [`blockmap`]: block → replica-location mapping with per-tier
//!   replication accounting;
//! - [`cluster`]: registered workers, heartbeat statistics, scheduled-write
//!   accounting, and liveness tracking;
//! - [`master`]: the [`Master`] facade tying everything together behind the
//!   client-facing API (Table 1), including the replication monitor (§5);
//! - [`backup`]: the backup master that tails the edit log, keeps an
//!   up-to-date namespace image, and produces checkpoints.

pub mod autotier;
pub mod backup;
pub mod blockmap;
pub mod cluster;
pub mod editlog;
pub mod lease;
pub mod ledger;
pub mod master;
pub mod mount;
pub mod namespace;

pub use autotier::{AutoTierConfig, MigrationDecision, MigrationDirection};
pub use backup::BackupMaster;
pub use blockmap::{BlockInfo, BlockMap};
pub use cluster::{ClusterState, WorkerInfo};
pub use editlog::{EditLog, EditOp, GroupCommitLog};
pub use lease::{ClientId, LeaseManager};
pub use ledger::QuotaLedger;
pub use master::{Master, ReplicationTask};
pub use mount::{ExternalCatalog, ExternalStatus, InMemoryCatalog, LocalDirCatalog, MountTable};
pub use namespace::{DirEntry, FileStatus, Namespace, TierQuota};
