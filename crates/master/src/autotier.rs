//! Auto-tiering migration planning: configuration and decision records.
//!
//! The planner itself is [`crate::Master::autotier_scan`]: it classifies
//! every complete file's temperature through a pluggable
//! [`octopus_policies::TierClassifier`], and turns classification changes
//! into `setReplication`-style vector edits — promote hot files by adding
//! a Memory-tier replica, demote cold ones by dropping it — which the §5
//! replication monitor then realizes as ordinary copy/delete tasks. The
//! monitor side executes those tasks with *bounded background bandwidth*
//! (see `octopus_core::net::monitor::run_migration_round`), so migrations
//! never starve foreground traffic.
//!
//! Every planned move is recorded as a
//! [`octopus_common::DecisionKind::Migration`] event in the master's audit
//! ring, queryable over the `Migrations` RPC / `octofs-remote migrations`.

use octopus_common::{INodeId, ReplicationVector};

/// Bounds on one auto-tiering planning round. The per-round caps are the
/// *planning-side* half of the bandwidth bound: the planner never flips
/// more vectors than one paced execution round can absorb, so the backlog
/// of migration copies stays shallow.
#[derive(Debug, Clone, Copy)]
pub struct AutoTierConfig {
    /// Most files migrated (either direction) per round.
    pub max_files_per_round: usize,
    /// Most *copy* bytes scheduled per round (a promotion of an `n`-byte
    /// file that needs one new replica counts `n`; demotions that only
    /// drop a replica count 0).
    pub max_bytes_per_round: u64,
    /// Execution-side pacing: aggregate migration copy bandwidth, in
    /// bytes/second, that the monitor round may consume.
    pub max_copy_bps: u64,
}

impl Default for AutoTierConfig {
    fn default() -> Self {
        Self { max_files_per_round: 32, max_bytes_per_round: 256 << 20, max_copy_bps: 64 << 20 }
    }
}

/// Which way a migration moves a file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationDirection {
    /// Toward faster tiers (a Memory-tier replica is added).
    Promote,
    /// Toward slower tiers (the Memory-tier replica is dropped).
    Demote,
}

impl MigrationDirection {
    /// Short display label (also the metrics `request_type`).
    pub fn label(&self) -> &'static str {
        match self {
            MigrationDirection::Promote => "promote",
            MigrationDirection::Demote => "demote",
        }
    }
}

/// One file's planned tier move, as returned by
/// [`crate::Master::autotier_scan`].
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationDecision {
    /// The migrated file.
    pub file: INodeId,
    /// Its namespace path at planning time.
    pub path: String,
    /// The heat score that triggered the move.
    pub score: f64,
    /// Promotion or demotion.
    pub direction: MigrationDirection,
    /// The file's replication vector before the move.
    pub from: ReplicationVector,
    /// The vector the planner installed.
    pub to: ReplicationVector,
    /// Copy bytes this move schedules (file length × new replicas).
    pub copy_bytes: u64,
}
