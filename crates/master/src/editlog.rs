//! The edit log: a durable record of namespace mutations, and the
//! checkpoint ("fsimage") machinery built on it.
//!
//! Every mutation the master applies is first recorded as an [`EditOp`].
//! Ops use a compact self-describing binary encoding (hand-rolled — a DFS
//! edit log wants a stable on-disk format, not a generic serializer), each
//! record protected by a CRC-32. A checkpoint is simply the namespace
//! re-expressed as the minimal op sequence that recreates it, so restore =
//! replay(checkpoint) + replay(tail of the log) — exactly the HDFS
//! fsimage/edits model the paper inherits (§2.1).

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use octopus_common::checksum::crc32;
use octopus_common::{BlockId, FsError, ReplicationVector, Result, MAX_TIERS};
use parking_lot::Mutex;
use std::sync::{Condvar, PoisonError};

use crate::namespace::{Namespace, TierQuota};

/// One namespace mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditOp {
    /// `mkdir -p path`.
    Mkdir {
        /// Directory path.
        path: String,
    },
    /// Create an empty file open for writing.
    CreateFile {
        /// File path.
        path: String,
        /// Replication vector (64-bit encoding).
        rv: ReplicationVector,
        /// Block size.
        block_size: u64,
    },
    /// Append a block to an open file.
    AddBlock {
        /// File path.
        path: String,
        /// Block id.
        block: BlockId,
        /// Generation stamp.
        gen: u64,
        /// Block length.
        len: u64,
    },
    /// Close (complete) a file.
    CloseFile {
        /// File path.
        path: String,
    },
    /// Reopen a complete file for append.
    AppendFile {
        /// File path.
        path: String,
    },
    /// Rename a file or directory.
    Rename {
        /// Source path.
        src: String,
        /// Destination path.
        dst: String,
    },
    /// Delete a file or directory subtree.
    Delete {
        /// Path to delete.
        path: String,
    },
    /// Replace a file's replication vector.
    SetReplication {
        /// File path.
        path: String,
        /// The new vector.
        rv: ReplicationVector,
    },
    /// Set a directory's per-tier quota.
    SetQuota {
        /// Directory path.
        path: String,
        /// The quota.
        quota: TierQuota,
    },
    /// Remove the last (uncommitted) block of an open file — pipeline
    /// recovery abandoned it after a write failure.
    AbandonBlock {
        /// File path.
        path: String,
        /// The abandoned block.
        block: BlockId,
        /// Its length (for the quota refund on replay).
        len: u64,
    },
}

const TAG_MKDIR: u8 = 1;
const TAG_CREATE: u8 = 2;
const TAG_ADD_BLOCK: u8 = 3;
const TAG_CLOSE: u8 = 4;
const TAG_RENAME: u8 = 5;
const TAG_DELETE: u8 = 6;
const TAG_SET_REP: u8 = 7;
const TAG_SET_QUOTA: u8 = 8;
const TAG_APPEND: u8 = 9;
const TAG_ABANDON_BLOCK: u8 = 10;

const NO_QUOTA: u64 = u64::MAX;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(FsError::Io("truncated edit record".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| FsError::Io(e.to_string()))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

impl EditOp {
    /// Encodes the op body (without record framing).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(64);
        match self {
            EditOp::Mkdir { path } => {
                b.push(TAG_MKDIR);
                put_str(&mut b, path);
            }
            EditOp::CreateFile { path, rv, block_size } => {
                b.push(TAG_CREATE);
                put_str(&mut b, path);
                put_u64(&mut b, rv.to_bits());
                put_u64(&mut b, *block_size);
            }
            EditOp::AddBlock { path, block, gen, len } => {
                b.push(TAG_ADD_BLOCK);
                put_str(&mut b, path);
                put_u64(&mut b, block.0);
                put_u64(&mut b, *gen);
                put_u64(&mut b, *len);
            }
            EditOp::CloseFile { path } => {
                b.push(TAG_CLOSE);
                put_str(&mut b, path);
            }
            EditOp::AppendFile { path } => {
                b.push(TAG_APPEND);
                put_str(&mut b, path);
            }
            EditOp::Rename { src, dst } => {
                b.push(TAG_RENAME);
                put_str(&mut b, src);
                put_str(&mut b, dst);
            }
            EditOp::Delete { path } => {
                b.push(TAG_DELETE);
                put_str(&mut b, path);
            }
            EditOp::SetReplication { path, rv } => {
                b.push(TAG_SET_REP);
                put_str(&mut b, path);
                put_u64(&mut b, rv.to_bits());
            }
            EditOp::SetQuota { path, quota } => {
                b.push(TAG_SET_QUOTA);
                put_str(&mut b, path);
                for t in 0..MAX_TIERS {
                    put_u64(&mut b, quota.per_tier[t].unwrap_or(NO_QUOTA));
                }
            }
            EditOp::AbandonBlock { path, block, len } => {
                b.push(TAG_ABANDON_BLOCK);
                put_str(&mut b, path);
                put_u64(&mut b, block.0);
                put_u64(&mut b, *len);
            }
        }
        b
    }

    /// Decodes one op body.
    pub fn decode(buf: &[u8]) -> Result<EditOp> {
        let mut r = Reader::new(buf);
        let tag = r.u8()?;
        let op = match tag {
            TAG_MKDIR => EditOp::Mkdir { path: r.str()? },
            TAG_CREATE => EditOp::CreateFile {
                path: r.str()?,
                rv: ReplicationVector::from_bits(r.u64()?),
                block_size: r.u64()?,
            },
            TAG_ADD_BLOCK => EditOp::AddBlock {
                path: r.str()?,
                block: BlockId(r.u64()?),
                gen: r.u64()?,
                len: r.u64()?,
            },
            TAG_CLOSE => EditOp::CloseFile { path: r.str()? },
            TAG_APPEND => EditOp::AppendFile { path: r.str()? },
            TAG_RENAME => EditOp::Rename { src: r.str()?, dst: r.str()? },
            TAG_DELETE => EditOp::Delete { path: r.str()? },
            TAG_SET_REP => EditOp::SetReplication {
                path: r.str()?,
                rv: ReplicationVector::from_bits(r.u64()?),
            },
            TAG_SET_QUOTA => {
                let path = r.str()?;
                let mut quota = TierQuota::unlimited();
                for t in 0..MAX_TIERS {
                    let v = r.u64()?;
                    quota.per_tier[t] = if v == NO_QUOTA { None } else { Some(v) };
                }
                EditOp::SetQuota { path, quota }
            }
            TAG_ABANDON_BLOCK => {
                EditOp::AbandonBlock { path: r.str()?, block: BlockId(r.u64()?), len: r.u64()? }
            }
            t => return Err(FsError::Io(format!("unknown edit op tag {t}"))),
        };
        if !r.done() {
            return Err(FsError::Io("trailing bytes in edit record".into()));
        }
        Ok(op)
    }

    /// Applies the op to a namespace (used for replay and by the backup
    /// master).
    pub fn apply(&self, ns: &mut Namespace) -> Result<()> {
        match self {
            EditOp::Mkdir { path } => {
                ns.mkdir(path, true)?;
            }
            EditOp::CreateFile { path, rv, block_size } => {
                ns.create_file(path, *rv, *block_size)?;
            }
            EditOp::AddBlock { path, block, len, .. } => {
                let id = ns.resolve(path)?;
                ns.add_block(id, *block, *len)?;
            }
            EditOp::CloseFile { path } => {
                let id = ns.resolve(path)?;
                ns.finalize_file(id)?;
            }
            EditOp::AppendFile { path } => {
                let id = ns.resolve(path)?;
                ns.reopen_file(id)?;
            }
            EditOp::Rename { src, dst } => {
                ns.rename(src, dst)?;
            }
            EditOp::Delete { path } => {
                ns.delete(path, true)?;
            }
            EditOp::SetReplication { path, rv } => {
                ns.set_replication(path, *rv)?;
            }
            EditOp::SetQuota { path, quota } => {
                ns.set_quota(path, *quota)?;
            }
            EditOp::AbandonBlock { path, block, len } => {
                let id = ns.resolve(path)?;
                ns.remove_last_block(id, *block, *len)?;
            }
        }
        Ok(())
    }
}

/// Frames ops as `[len u32][crc u32][body]` records.
fn frame(op: &EditOp) -> Vec<u8> {
    let body = op.encode();
    let mut rec = Vec::with_capacity(body.len() + 8);
    rec.extend_from_slice(&(body.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&body).to_le_bytes());
    rec.extend_from_slice(&body);
    rec
}

/// Decodes a stream of framed records. Stops cleanly at a truncated tail
/// (a crash mid-append), erroring only on corruption of complete records.
pub fn decode_stream(mut buf: &[u8]) -> Result<Vec<EditOp>> {
    let mut ops = Vec::new();
    while buf.len() >= 8 {
        let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        if buf.len() < 8 + len {
            break; // truncated tail
        }
        let body = &buf[8..8 + len];
        if crc32(body) != crc {
            return Err(FsError::Io("edit record CRC mismatch".into()));
        }
        ops.push(EditOp::decode(body)?);
        buf = &buf[8 + len..];
    }
    Ok(ops)
}

/// The edit log: an in-memory op sequence, optionally write-through to a
/// file.
pub struct EditLog {
    ops: Vec<EditOp>,
    file: Option<File>,
}

impl EditLog {
    /// An in-memory log (tests, simulations).
    pub fn in_memory() -> Self {
        Self { ops: Vec::new(), file: None }
    }

    /// Opens (or creates) a file-backed log, loading existing records.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let mut existing = Vec::new();
        if path.exists() {
            File::open(path)?.read_to_end(&mut existing)?;
        }
        let ops = decode_stream(&existing)?;
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { ops, file: Some(file) })
    }

    /// Appends an op (write-through when file-backed).
    pub fn append(&mut self, op: EditOp) -> Result<()> {
        if let Some(f) = &mut self.file {
            f.write_all(&frame(&op))?;
            f.flush()?;
        }
        self.ops.push(op);
        Ok(())
    }

    /// Appends a batch of ops with one coalesced write and a single
    /// `fsync` — the durability half of group commit. Records only become
    /// part of the in-memory sequence once the whole batch is on stable
    /// storage, so tailing readers (the backup master) never see an op
    /// that a crash could take back.
    pub fn append_batch(&mut self, ops: Vec<EditOp>) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        if let Some(f) = &mut self.file {
            let mut buf = Vec::with_capacity(ops.len() * 64);
            for op in &ops {
                buf.extend_from_slice(&frame(op));
            }
            f.write_all(&buf)?;
            f.flush()?;
            f.sync_data()?;
        }
        self.ops.extend(ops);
        Ok(())
    }

    /// All recorded ops.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Ops recorded at or after index `from` (for incremental tailing by
    /// the backup master).
    pub fn since(&self, from: usize) -> &[EditOp] {
        &self.ops[from.min(self.ops.len())..]
    }

    /// Replays the whole log onto a namespace.
    pub fn replay(&self, ns: &mut Namespace) -> Result<()> {
        for op in &self.ops {
            op.apply(ns)?;
        }
        Ok(())
    }

    /// Truncates the in-memory ops (after they are folded into a
    /// checkpoint). File-backed logs are rewritten empty.
    pub fn truncate(&mut self) -> Result<()> {
        self.ops.clear();
        if let Some(f) = &mut self.file {
            f.set_len(0)?;
        }
        Ok(())
    }
}

/// Staging state of the group-commit batcher: ops accepted but not yet on
/// stable storage, plus the sequence bookkeeping that tells a waiter when
/// its op became durable.
struct GroupState {
    /// Ops staged since the last committed batch, in sequence order.
    staged: Vec<EditOp>,
    /// Sequence number the next staged op receives.
    next_seq: u64,
    /// All ops with sequence `< resolved_seq` have been resolved —
    /// committed durably, or failed with [`GroupState::poisoned`] set.
    resolved_seq: u64,
    /// Whether a committer is currently flushing a batch.
    committing: bool,
    /// A batch write failed; the log refuses further durability claims
    /// (matching the usual journal discipline: an fsync failure means the
    /// tail of the log is unknowable).
    poisoned: Option<String>,
}

/// A group-commit edit log: writers *stage* ops (cheap, done while still
/// holding the namespace-shard lock so the log order is a valid
/// linearization), then *wait* for durability after releasing the shard
/// lock. The first waiter that finds no committer running becomes the
/// committer: it takes the whole staged batch, writes and fsyncs it as one
/// coalesced record run, and wakes every waiter the batch covered. Log
/// latency thus amortizes across all concurrently-staging writers instead
/// of serializing behind per-op fsyncs under a lock.
pub struct GroupCommitLog {
    state: Mutex<GroupState>,
    /// The durable log. Separate from `state` so stagers are never blocked
    /// behind an in-progress fsync; only the single active committer and
    /// snapshot readers take this lock.
    log: Mutex<EditLog>,
    cond: Condvar,
}

impl GroupCommitLog {
    /// Wraps an edit log (file-backed or in-memory) in the batcher. Ops
    /// already in the log count as resolved.
    pub fn new(log: EditLog) -> Self {
        let existing = log.len() as u64;
        Self {
            state: Mutex::new(GroupState {
                staged: Vec::new(),
                next_seq: existing,
                resolved_seq: existing,
                committing: false,
                poisoned: None,
            }),
            log: Mutex::new(log),
            cond: Condvar::new(),
        }
    }

    /// Stages an op for the next batch and returns its sequence number.
    /// Call while holding the lock that ordered the op (its namespace
    /// shard); the assigned sequence then agrees with every dependency.
    pub fn stage(&self, op: EditOp) -> u64 {
        let mut st = self.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.staged.push(op);
        seq
    }

    /// Blocks until the op with sequence `seq` is durable (or the log is
    /// poisoned by an I/O failure). Acked-to-client therefore implies
    /// fsynced. The first waiter to arrive while no batch is in flight
    /// commits the entire staged batch itself.
    pub fn wait_durable(&self, seq: u64) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            if let Some(e) = &st.poisoned {
                return Err(FsError::Io(format!("edit log poisoned: {e}")));
            }
            if seq < st.resolved_seq {
                return Ok(());
            }
            if !st.committing {
                st.committing = true;
                let batch = std::mem::take(&mut st.staged);
                let n = batch.len() as u64;
                drop(st);
                let res = self.log.lock().append_batch(batch);
                st = self.state.lock();
                st.resolved_seq += n;
                st.committing = false;
                if let Err(e) = res {
                    st.poisoned = Some(e.to_string());
                }
                self.cond.notify_all();
            } else {
                st = self.cond.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Stages an op and waits for its durability — the synchronous path
    /// used by internal callers (auto-tiering, lease recovery) that roll
    /// back namespace state when the log rejects an op.
    pub fn append_sync(&self, op: EditOp) -> Result<()> {
        let seq = self.stage(op);
        self.wait_durable(seq)
    }

    /// Number of durable ops.
    pub fn durable_len(&self) -> usize {
        self.log.lock().len()
    }

    /// Clones the durable ops recorded at or after index `from` (for
    /// incremental tailing by the backup master). Staged-but-unflushed ops
    /// are invisible here by design.
    pub fn since(&self, from: usize) -> Vec<EditOp> {
        self.log.lock().since(from).to_vec()
    }

    /// Flushes anything staged and runs `f` over the durable op sequence.
    pub fn with_durable<R>(&self, f: impl FnOnce(&[EditOp]) -> R) -> Result<R> {
        self.flush()?;
        Ok(f(self.log.lock().ops()))
    }

    /// Forces every staged op to stable storage.
    pub fn flush(&self) -> Result<()> {
        let latest = {
            let st = self.state.lock();
            st.next_seq
        };
        if latest == 0 {
            return Ok(());
        }
        self.wait_durable(latest - 1)
    }
}

/// Expresses a namespace as the minimal op sequence recreating it
/// (a checkpoint image).
pub fn namespace_to_ops(ns: &Namespace) -> Vec<EditOp> {
    let mut ops = Vec::new();
    for (path, quota) in ns.iter_dirs() {
        if path != "/" {
            ops.push(EditOp::Mkdir { path: path.clone() });
        }
        if quota != TierQuota::unlimited() {
            ops.push(EditOp::SetQuota { path, quota });
        }
    }
    let mut files = ns.iter_files();
    files.sort_by(|a, b| a.1.cmp(&b.1));
    for (_, path, meta) in files {
        ops.push(EditOp::CreateFile {
            path: path.clone(),
            rv: meta.rv,
            block_size: meta.block_size,
        });
        let blocks = meta.blocks.clone();
        let n = blocks.len() as u64;
        for (i, b) in blocks.iter().enumerate() {
            // Per-block lengths are not kept in the namespace (only the
            // total); reconstruct: all but the last block are full.
            let len = if i as u64 + 1 < n {
                meta.block_size
            } else {
                meta.len - meta.block_size * (n.saturating_sub(1))
            };
            ops.push(EditOp::AddBlock { path: path.clone(), block: *b, gen: 0, len });
        }
        if meta.complete {
            ops.push(EditOp::CloseFile { path: path.clone() });
        }
    }
    ops
}

/// Serializes a checkpoint image to bytes.
pub fn encode_image(ns: &Namespace) -> Vec<u8> {
    let mut out = Vec::new();
    for op in namespace_to_ops(ns) {
        out.extend_from_slice(&frame(&op));
    }
    out
}

/// Restores a namespace from a checkpoint image.
pub fn decode_image(image: &[u8]) -> Result<Namespace> {
    let mut ns = Namespace::new();
    for op in decode_stream(image)? {
        op.apply(&mut ns)?;
    }
    Ok(ns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<EditOp> {
        vec![
            EditOp::Mkdir { path: "/a/b".into() },
            EditOp::CreateFile {
                path: "/a/b/f".into(),
                rv: ReplicationVector::msh(1, 0, 2),
                block_size: 128,
            },
            EditOp::AddBlock { path: "/a/b/f".into(), block: BlockId(5), gen: 3, len: 128 },
            EditOp::AddBlock { path: "/a/b/f".into(), block: BlockId(9), gen: 3, len: 32 },
            EditOp::AbandonBlock { path: "/a/b/f".into(), block: BlockId(9), len: 32 },
            EditOp::AddBlock { path: "/a/b/f".into(), block: BlockId(6), gen: 3, len: 64 },
            EditOp::CloseFile { path: "/a/b/f".into() },
            EditOp::AppendFile { path: "/a/b/f".into() },
            EditOp::CloseFile { path: "/a/b/f".into() },
            EditOp::SetReplication { path: "/a/b/f".into(), rv: ReplicationVector::msh(0, 1, 2) },
            EditOp::Rename { src: "/a/b/f".into(), dst: "/a/g".into() },
            EditOp::SetQuota { path: "/a".into(), quota: TierQuota::limit_tier(0, 1 << 20) },
            EditOp::Delete { path: "/a/b".into() },
        ]
    }

    #[test]
    fn ops_encode_decode_round_trip() {
        for op in sample_ops() {
            let enc = op.encode();
            let dec = EditOp::decode(&enc).unwrap();
            assert_eq!(dec, op);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(EditOp::decode(&[99, 0, 0]).is_err());
        // Trailing bytes rejected.
        let mut enc = EditOp::Mkdir { path: "/x".into() }.encode();
        enc.push(0);
        assert!(EditOp::decode(&enc).is_err());
    }

    #[test]
    fn stream_survives_truncated_tail_but_not_corruption() {
        let mut buf = Vec::new();
        for op in sample_ops() {
            buf.extend_from_slice(&frame(&op));
        }
        let full = decode_stream(&buf).unwrap();
        assert_eq!(full.len(), sample_ops().len());
        // Truncate mid-record: decodes the complete prefix.
        let cut = decode_stream(&buf[..buf.len() - 3]).unwrap();
        assert_eq!(cut.len(), sample_ops().len() - 1);
        // Flip a body byte: CRC error.
        let mut bad = buf.clone();
        bad[10] ^= 0xFF;
        assert!(decode_stream(&bad).is_err());
    }

    #[test]
    fn replay_reconstructs_namespace() {
        let mut log = EditLog::in_memory();
        for op in sample_ops() {
            log.append(op).unwrap();
        }
        let mut ns = Namespace::new();
        log.replay(&mut ns).unwrap();
        // After the sample sequence: /a exists with quota, /a/g is the
        // renamed file, /a/b was deleted.
        let st = ns.status("/a/g").unwrap();
        assert_eq!(st.len, 192);
        assert_eq!(st.rv, ReplicationVector::msh(0, 1, 2));
        assert!(ns.resolve("/a/b").is_err());
        let (q, _) = ns.quota_usage("/a").unwrap();
        assert_eq!(q, TierQuota::limit_tier(0, 1 << 20));
    }

    #[test]
    fn file_backed_log_persists() {
        let dir = std::env::temp_dir().join(format!(
            "octopus_editlog_{}_{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edits.log");
        {
            let mut log = EditLog::open(&path).unwrap();
            for op in sample_ops() {
                log.append(op).unwrap();
            }
        }
        let log2 = EditLog::open(&path).unwrap();
        assert_eq!(log2.ops(), sample_ops().as_slice());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn since_returns_incremental_tail() {
        let mut log = EditLog::in_memory();
        for op in sample_ops() {
            log.append(op).unwrap();
        }
        assert_eq!(log.since(0).len(), log.len());
        assert_eq!(log.since(7).len(), sample_ops().len() - 7);
        assert!(log.since(100).is_empty());
    }

    #[test]
    fn image_round_trip() {
        let mut ns = Namespace::new();
        ns.mkdir("/data/warm", true).unwrap();
        ns.set_quota("/data", TierQuota::limit_tier(1, 1 << 30)).unwrap();
        let f = ns.create_file("/data/f", ReplicationVector::msh(0, 1, 2), 100).unwrap();
        ns.add_block(f, BlockId(1), 100).unwrap();
        ns.add_block(f, BlockId(2), 40).unwrap();
        ns.finalize_file(f).unwrap();
        ns.create_file("/data/warm/open", ReplicationVector::from_replication_factor(2), 100)
            .unwrap();

        let image = encode_image(&ns);
        let restored = decode_image(&image).unwrap();
        let st = restored.status("/data/f").unwrap();
        assert_eq!(st.len, 140);
        assert_eq!(st.rv, ReplicationVector::msh(0, 1, 2));
        assert!(st.complete);
        let meta = restored.file_meta(restored.resolve("/data/f").unwrap()).unwrap();
        assert_eq!(meta.blocks, vec![BlockId(1), BlockId(2)]);
        let open = restored.status("/data/warm/open").unwrap();
        assert!(!open.complete);
        let (q, usage) = restored.quota_usage("/data").unwrap();
        assert_eq!(q, TierQuota::limit_tier(1, 1 << 30));
        assert_eq!(usage[1], 140); // SSD×1 charge re-derived on replay
        assert_eq!(usage[2], 280);
    }

    #[test]
    fn truncate_clears_log() {
        let mut log = EditLog::in_memory();
        log.append(EditOp::Mkdir { path: "/x".into() }).unwrap();
        log.truncate().unwrap();
        assert!(log.is_empty());
    }
}
