//! The block → replica-locations map and per-tier replication accounting.
//!
//! The master tracks, for every block, the confirmed replica locations
//! (reported by workers) and the pending ones (scheduled into a write
//! pipeline or a re-replication task but not yet acknowledged). The
//! [`replication_state`] function computes per-tier deficits and surpluses
//! against a file's replication vector — the trigger conditions of §5.

use std::collections::HashMap;

use octopus_common::{
    Block, BlockId, FsError, INodeId, Location, MediaId, ReplicationVector, Result, TierId,
    WorkerId, MAX_TIERS,
};

/// Master-side state of one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockInfo {
    /// Block identity.
    pub block: Block,
    /// Owning file.
    pub file: INodeId,
    /// Confirmed replicas.
    pub locations: Vec<Location>,
    /// Scheduled-but-unconfirmed replicas.
    pub pending: Vec<Location>,
}

impl BlockInfo {
    /// Confirmed + pending locations (used when deciding whether more
    /// replicas must be scheduled).
    pub fn all_locations(&self) -> Vec<Location> {
        let mut v = self.locations.clone();
        v.extend_from_slice(&self.pending);
        v
    }
}

/// The map of all blocks.
#[derive(Debug, Default)]
pub struct BlockMap {
    blocks: HashMap<BlockId, BlockInfo>,
}

impl BlockMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new block with its scheduled pipeline locations.
    pub fn insert(&mut self, block: Block, file: INodeId, pending: Vec<Location>) {
        self.blocks.insert(block.id, BlockInfo { block, file, locations: Vec::new(), pending });
    }

    /// Looks up a block.
    pub fn get(&self, id: BlockId) -> Option<&BlockInfo> {
        self.blocks.get(&id)
    }

    /// Number of tracked blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Marks a replica confirmed (moves it from pending, or records it
    /// outright — e.g. discovered via a block report).
    pub fn confirm(&mut self, id: BlockId, loc: Location) -> Result<()> {
        let info = self
            .blocks
            .get_mut(&id)
            .ok_or_else(|| FsError::Internal(format!("confirm of unknown block {id}")))?;
        info.pending.retain(|l| l != &loc);
        if !info.locations.contains(&loc) {
            info.locations.push(loc);
        }
        Ok(())
    }

    /// Drops a pending replica that will never be written (pipeline
    /// failure). Returns whether the location was actually pending — the
    /// caller only releases the write reservation when it was, so repeated
    /// or spurious aborts can't double-release.
    pub fn abandon_pending(&mut self, id: BlockId, loc: &Location) -> bool {
        if let Some(info) = self.blocks.get_mut(&id) {
            let before = info.pending.len();
            info.pending.retain(|l| l != loc);
            return info.pending.len() != before;
        }
        false
    }

    /// Adds pending replicas (re-replication tasks).
    pub fn add_pending(&mut self, id: BlockId, locs: &[Location]) -> Result<()> {
        let info = self
            .blocks
            .get_mut(&id)
            .ok_or_else(|| FsError::Internal(format!("add_pending on unknown block {id}")))?;
        info.pending.extend_from_slice(locs);
        Ok(())
    }

    /// Removes one confirmed replica (invalidation).
    pub fn remove_replica(&mut self, id: BlockId, media: MediaId) {
        if let Some(info) = self.blocks.get_mut(&id) {
            info.locations.retain(|l| l.media != media);
            info.pending.retain(|l| l.media != media);
        }
    }

    /// Forgets a block entirely (file deletion). Returns its last state.
    pub fn remove_block(&mut self, id: BlockId) -> Option<BlockInfo> {
        self.blocks.remove(&id)
    }

    /// Drops every replica hosted by a dead worker; returns the ids of
    /// blocks that lost a replica (re-replication candidates).
    pub fn remove_worker_replicas(&mut self, worker: WorkerId) -> Vec<BlockId> {
        let mut affected = Vec::new();
        for (id, info) in self.blocks.iter_mut() {
            let before = info.locations.len() + info.pending.len();
            info.locations.retain(|l| l.worker != worker);
            info.pending.retain(|l| l.worker != worker);
            if info.locations.len() + info.pending.len() != before {
                affected.push(*id);
            }
        }
        affected.sort_unstable();
        affected
    }

    /// All block ids, unordered.
    pub fn block_ids(&self) -> Vec<BlockId> {
        self.blocks.keys().copied().collect()
    }

    /// Iterates `(id, info)`.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockId, &BlockInfo)> {
        self.blocks.iter()
    }
}

/// Per-tier replication deficit/surplus of one block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RepState {
    /// Tiers (with counts) missing *pinned* replicas.
    pub under_pinned: Vec<(TierId, u8)>,
    /// Number of missing *unspecified* replicas.
    pub under_unspecified: u8,
    /// Tiers (with counts) holding more replicas than requested beyond
    /// what the unspecified budget absorbs.
    pub over: Vec<(TierId, u8)>,
}

impl RepState {
    /// Whether the block is exactly replicated.
    pub fn is_satisfied(&self) -> bool {
        self.under_pinned.is_empty() && self.under_unspecified == 0 && self.over.is_empty()
    }

    /// Total missing replicas.
    pub fn total_under(&self) -> u32 {
        self.under_pinned.iter().map(|&(_, c)| c as u32).sum::<u32>()
            + self.under_unspecified as u32
    }
}

/// Compares a block's replica locations against its file's replication
/// vector. Pinned tier counts must be met tier-by-tier; surplus replicas on
/// any tier count toward the unspecified budget; anything beyond that is
/// over-replication charged to the tiers with the largest surplus.
pub fn replication_state(rv: ReplicationVector, locations: &[Location]) -> RepState {
    let mut have = [0u16; MAX_TIERS];
    for l in locations {
        if (l.tier.0 as usize) < MAX_TIERS {
            have[l.tier.0 as usize] += 1;
        }
    }
    let mut under_pinned = Vec::new();
    let mut surplus = [0u16; MAX_TIERS];
    for t in 0..MAX_TIERS {
        let need = rv.tier(TierId(t as u8)) as u16;
        if have[t] < need {
            under_pinned.push((TierId(t as u8), (need - have[t]) as u8));
        } else {
            surplus[t] = have[t] - need;
        }
    }
    let u = rv.unspecified() as u16;
    let surplus_total: u16 = surplus.iter().sum();
    let under_unspecified = u.saturating_sub(surplus_total) as u8;

    let mut over = Vec::new();
    let mut excess = surplus_total.saturating_sub(u);
    if excess > 0 {
        // Charge the excess to the tiers with the largest surplus first.
        let mut order: Vec<usize> = (0..MAX_TIERS).filter(|&t| surplus[t] > 0).collect();
        order.sort_by_key(|&t| std::cmp::Reverse(surplus[t]));
        for t in order {
            if excess == 0 {
                break;
            }
            let take = surplus[t].min(excess);
            over.push((TierId(t as u8), take as u8));
            excess -= take;
        }
    }
    RepState { under_pinned, under_unspecified, over }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_common::GenStamp;

    fn loc(worker: u32, media: u32, tier: u8) -> Location {
        Location { worker: WorkerId(worker), media: MediaId(media), tier: TierId(tier) }
    }

    fn blk(id: u64) -> Block {
        Block { id: BlockId(id), gen: GenStamp(0), len: 128 }
    }

    #[test]
    fn insert_confirm_lifecycle() {
        let mut bm = BlockMap::new();
        let pipeline = vec![loc(0, 0, 0), loc(1, 5, 2), loc(2, 10, 2)];
        bm.insert(blk(1), INodeId(9), pipeline.clone());
        assert_eq!(bm.get(BlockId(1)).unwrap().pending.len(), 3);
        bm.confirm(BlockId(1), pipeline[0]).unwrap();
        bm.confirm(BlockId(1), pipeline[1]).unwrap();
        let info = bm.get(BlockId(1)).unwrap();
        assert_eq!(info.locations.len(), 2);
        assert_eq!(info.pending.len(), 1);
        assert_eq!(info.all_locations().len(), 3);
        // Confirming again is idempotent.
        bm.confirm(BlockId(1), pipeline[0]).unwrap();
        assert_eq!(bm.get(BlockId(1)).unwrap().locations.len(), 2);
        // Confirming an unknown block errors.
        assert!(bm.confirm(BlockId(2), pipeline[0]).is_err());
    }

    #[test]
    fn abandon_and_remove() {
        let mut bm = BlockMap::new();
        let pipeline = vec![loc(0, 0, 0), loc(1, 5, 2)];
        bm.insert(blk(1), INodeId(1), pipeline.clone());
        assert!(bm.abandon_pending(BlockId(1), &pipeline[1]));
        // Idempotent: already removed, so nothing to release twice.
        assert!(!bm.abandon_pending(BlockId(1), &pipeline[1]));
        assert!(!bm.abandon_pending(BlockId(9), &pipeline[1]));
        assert_eq!(bm.get(BlockId(1)).unwrap().pending, vec![pipeline[0]]);
        bm.confirm(BlockId(1), pipeline[0]).unwrap();
        bm.remove_replica(BlockId(1), MediaId(0));
        assert!(bm.get(BlockId(1)).unwrap().locations.is_empty());
        assert!(bm.remove_block(BlockId(1)).is_some());
        assert!(bm.get(BlockId(1)).is_none());
    }

    #[test]
    fn dead_worker_sweep() {
        let mut bm = BlockMap::new();
        bm.insert(blk(1), INodeId(1), vec![]);
        bm.confirm(BlockId(1), loc(0, 0, 2)).unwrap();
        bm.confirm(BlockId(1), loc(1, 5, 2)).unwrap();
        bm.insert(blk(2), INodeId(1), vec![]);
        bm.confirm(BlockId(2), loc(2, 9, 2)).unwrap();
        let affected = bm.remove_worker_replicas(WorkerId(1));
        assert_eq!(affected, vec![BlockId(1)]);
        assert_eq!(bm.get(BlockId(1)).unwrap().locations.len(), 1);
        assert_eq!(bm.get(BlockId(2)).unwrap().locations.len(), 1);
    }

    #[test]
    fn replication_state_satisfied() {
        // ⟨1,0,2⟩: one memory + two HDD.
        let rv = ReplicationVector::msh(1, 0, 2);
        let locs = vec![loc(0, 0, 0), loc(1, 5, 2), loc(2, 10, 2)];
        assert!(replication_state(rv, &locs).is_satisfied());
    }

    #[test]
    fn replication_state_under_pinned() {
        let rv = ReplicationVector::msh(1, 0, 2);
        let locs = vec![loc(1, 5, 2), loc(2, 10, 2)]; // memory replica lost
        let st = replication_state(rv, &locs);
        assert_eq!(st.under_pinned, vec![(TierId(0), 1)]);
        assert_eq!(st.under_unspecified, 0);
        assert!(st.over.is_empty());
        assert_eq!(st.total_under(), 1);
    }

    #[test]
    fn replication_state_unspecified_absorbs_any_tier() {
        // U=3 satisfied by replicas on mixed tiers.
        let rv = ReplicationVector::from_replication_factor(3);
        let locs = vec![loc(0, 0, 0), loc(1, 5, 1), loc(2, 10, 2)];
        assert!(replication_state(rv, &locs).is_satisfied());
        // Only two present → one unspecified missing.
        let st = replication_state(rv, &locs[..2]);
        assert_eq!(st.under_unspecified, 1);
        assert!(st.under_pinned.is_empty());
    }

    #[test]
    fn replication_state_over() {
        // ⟨0,0,2⟩ with three HDD replicas → one over on HDD.
        let rv = ReplicationVector::msh(0, 0, 2);
        let locs = vec![loc(0, 2, 2), loc(1, 7, 2), loc(2, 12, 2)];
        let st = replication_state(rv, &locs);
        assert_eq!(st.over, vec![(TierId(2), 1)]);
        assert!(st.under_pinned.is_empty());
    }

    #[test]
    fn replication_state_mixed_move_scenario() {
        // Paper's move: vector changed ⟨1,0,2⟩ → ⟨1,1,1⟩ while replicas are
        // still at ⟨1,0,2⟩: SSD is under by 1, HDD over by 1.
        let rv = ReplicationVector::msh(1, 1, 1);
        let locs = vec![loc(0, 0, 0), loc(1, 7, 2), loc(2, 12, 2)];
        let st = replication_state(rv, &locs);
        assert_eq!(st.under_pinned, vec![(TierId(1), 1)]);
        assert_eq!(st.over, vec![(TierId(2), 1)]);
    }

    #[test]
    fn replication_state_surplus_beyond_unspecified() {
        // ⟨0,0,1⟩ + U=1, but four replicas: 1 pinned HDD + 1 absorbed by U,
        // 2 over (charged to the largest-surplus tiers).
        let rv = ReplicationVector::msh(0, 0, 1).with_unspecified(1);
        let locs = vec![loc(0, 2, 2), loc(1, 7, 2), loc(2, 12, 1), loc(3, 17, 1)];
        let st = replication_state(rv, &locs);
        let total_over: u32 = st.over.iter().map(|&(_, c)| c as u32).sum();
        assert_eq!(total_over, 2);
        assert!(!st.is_satisfied());
    }
}
