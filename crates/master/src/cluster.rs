//! Master-side cluster state: registered workers, heartbeat statistics,
//! scheduled-write accounting, and liveness tracking (paper §2.1/§3.2).

use std::collections::{BTreeMap, HashMap};

use octopus_common::{
    ClusterConfig, FsError, MediaId, MediaStats, RackId, Result, StorageTierReport, TierId,
    TierRegistry, TierStats, WorkerId, WorkerStats, MAX_TIERS,
};
use octopus_policies::ClusterSnapshot;

/// Master-side record of one worker.
#[derive(Debug, Clone)]
pub struct WorkerInfo {
    /// Worker id.
    pub worker: WorkerId,
    /// Rack.
    pub rack: RackId,
    /// Latest per-media statistics from heartbeats.
    pub media: Vec<MediaStats>,
    /// Average network transfer rate (bytes/s).
    pub net_thru: f64,
    /// Active network connections.
    pub nr_conn: u32,
    /// Timestamp (ms) of the last heartbeat.
    pub last_heartbeat_ms: u64,
    /// Liveness flag maintained by [`ClusterState::tick`].
    pub live: bool,
}

/// All workers plus scheduled-write accounting.
///
/// Between heartbeats the master adjusts its view of remaining capacity by
/// the bytes it has scheduled into pipelines (`schedule_write`) so that
/// consecutive placements do not oversubscribe a medium.
#[derive(Debug)]
pub struct ClusterState {
    workers: BTreeMap<WorkerId, WorkerInfo>,
    decommissioning: std::collections::BTreeSet<WorkerId>,
    scheduled: HashMap<MediaId, u64>,
    heartbeat_ms: u64,
    dead_after_missed: u32,
    num_tiers: usize,
    volatile: [bool; MAX_TIERS],
}

impl ClusterState {
    /// Creates cluster state from configuration (no workers registered yet).
    pub fn new(config: &ClusterConfig) -> Self {
        let mut volatile = [false; MAX_TIERS];
        for t in config.tiers.iter() {
            volatile[t.id.0 as usize] = t.volatile;
        }
        Self {
            workers: BTreeMap::new(),
            decommissioning: std::collections::BTreeSet::new(),
            scheduled: HashMap::new(),
            heartbeat_ms: config.heartbeat_ms,
            dead_after_missed: config.dead_after_missed,
            num_tiers: config.tiers.len(),
            volatile,
        }
    }

    /// Registers a worker (first heartbeat supplies its media).
    pub fn register(&mut self, worker: WorkerId, rack: RackId, net_thru: f64, now_ms: u64) {
        self.workers.insert(
            worker,
            WorkerInfo {
                worker,
                rack,
                media: Vec::new(),
                net_thru,
                nr_conn: 0,
                last_heartbeat_ms: now_ms,
                live: true,
            },
        );
    }

    /// Processes a heartbeat: refreshes media stats, connection counts, and
    /// liveness. Scheduled-write adjustments for the reported media are
    /// retained (they describe writes still in flight).
    pub fn heartbeat(
        &mut self,
        worker: WorkerId,
        media: Vec<MediaStats>,
        nr_conn: u32,
        now_ms: u64,
    ) -> Result<()> {
        let w = self
            .workers
            .get_mut(&worker)
            .ok_or_else(|| FsError::UnknownWorker(worker.to_string()))?;
        w.media = media;
        w.nr_conn = nr_conn;
        w.last_heartbeat_ms = now_ms;
        w.live = true;
        Ok(())
    }

    /// Reserves capacity for a block scheduled to be written.
    pub fn schedule_write(&mut self, media: MediaId, bytes: u64) {
        *self.scheduled.entry(media).or_insert(0) += bytes;
    }

    /// Releases a reservation once the write is confirmed (the worker's
    /// own accounting takes over) or abandoned.
    pub fn complete_write(&mut self, media: MediaId, bytes: u64) {
        if let Some(v) = self.scheduled.get_mut(&media) {
            *v = v.saturating_sub(bytes);
            if *v == 0 {
                self.scheduled.remove(&media);
            }
        }
        // Reflect the consumption immediately so the view stays accurate
        // until the next heartbeat.
        for w in self.workers.values_mut() {
            for m in w.media.iter_mut() {
                if m.media == media {
                    m.remaining = m.remaining.saturating_sub(bytes);
                }
            }
        }
    }

    /// Cancels a reservation for a write that never happened (pipeline
    /// stage aborted before storing). Unlike [`ClusterState::complete_write`]
    /// this does *not* charge the medium's cached `remaining` — no bytes
    /// landed — it only returns the scheduled capacity to the placement
    /// view.
    pub fn cancel_write(&mut self, media: MediaId, bytes: u64) {
        if let Some(v) = self.scheduled.get_mut(&media) {
            *v = v.saturating_sub(bytes);
            if *v == 0 {
                self.scheduled.remove(&media);
            }
        }
    }

    /// Total scheduled-write reservation currently held against a medium
    /// (test observability for reservation-leak regressions).
    pub fn scheduled_bytes(&self, media: MediaId) -> u64 {
        self.scheduled.get(&media).copied().unwrap_or(0)
    }

    /// Sum of scheduled-write reservations across every medium (the
    /// cluster-wide in-flight write volume).
    pub fn total_scheduled_bytes(&self) -> u64 {
        self.scheduled.values().sum()
    }

    /// Marks workers dead whose heartbeats stopped; returns the newly dead.
    pub fn tick(&mut self, now_ms: u64) -> Vec<WorkerId> {
        let deadline = self.heartbeat_ms * self.dead_after_missed as u64;
        let mut newly_dead = Vec::new();
        for w in self.workers.values_mut() {
            if w.live && now_ms.saturating_sub(w.last_heartbeat_ms) > deadline {
                w.live = false;
                newly_dead.push(w.worker);
            }
        }
        newly_dead
    }

    /// Administratively marks a worker dead (used by tests and
    /// decommissioning).
    pub fn mark_dead(&mut self, worker: WorkerId) {
        if let Some(w) = self.workers.get_mut(&worker) {
            w.live = false;
        }
    }

    /// Whether a worker is live.
    pub fn is_live(&self, worker: WorkerId) -> bool {
        self.workers.get(&worker).is_some_and(|w| w.live)
    }

    /// Marks a worker as decommissioning: it keeps serving reads and
    /// heartbeats, but the snapshot advertises zero remaining capacity on
    /// its media so no new replicas are placed there.
    pub fn start_decommission(&mut self, worker: WorkerId) {
        self.decommissioning.insert(worker);
    }

    /// Whether a worker is decommissioning.
    pub fn is_decommissioning(&self, worker: WorkerId) -> bool {
        self.decommissioning.contains(&worker)
    }

    /// Clears the decommissioning mark (worker retired or reinstated).
    pub fn clear_decommission(&mut self, worker: WorkerId) {
        self.decommissioning.remove(&worker);
    }

    /// Worker info.
    pub fn worker(&self, id: WorkerId) -> Option<&WorkerInfo> {
        self.workers.get(&id)
    }

    /// All registered workers.
    pub fn workers(&self) -> impl Iterator<Item = &WorkerInfo> {
        self.workers.values()
    }

    /// `(worker, tier)` of a medium, searching live workers.
    pub fn locate_media(&self, media: MediaId) -> Option<(WorkerId, TierId)> {
        for w in self.workers.values() {
            for m in &w.media {
                if m.media == media {
                    return Some((w.worker, m.tier));
                }
            }
        }
        None
    }

    /// Builds the policy-facing snapshot over live workers, with remaining
    /// capacities reduced by scheduled writes.
    pub fn snapshot(&self) -> ClusterSnapshot {
        let mut media = Vec::new();
        let mut workers = Vec::new();
        for w in self.workers.values().filter(|w| w.live) {
            workers.push(WorkerStats {
                worker: w.worker,
                rack: w.rack,
                net_thru: w.net_thru,
                nr_conn: w.nr_conn,
                live: true,
            });
            let draining = self.decommissioning.contains(&w.worker);
            for m in &w.media {
                let mut m = *m;
                if let Some(&s) = self.scheduled.get(&m.media) {
                    m.remaining = m.remaining.saturating_sub(s);
                }
                if draining {
                    m.remaining = 0; // never a placement target
                }
                media.push(m);
            }
        }
        ClusterSnapshot { media, workers, num_tiers: self.num_tiers, volatile: self.volatile }
    }

    /// The `getStorageTierReports` payload (Table 1).
    pub fn tier_reports(&self, registry: &TierRegistry) -> Vec<StorageTierReport> {
        let snap = self.snapshot();
        registry
            .iter()
            .filter_map(|t| {
                TierStats::aggregate(t.id, &snap.media).map(|stats| StorageTierReport {
                    name: t.name.clone(),
                    stats,
                    volatile: t.volatile,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_common::ClusterConfig;

    fn media_stats(media: u32, worker: u32, tier: u8, rem: u64) -> MediaStats {
        MediaStats {
            media: MediaId(media),
            worker: WorkerId(worker),
            rack: RackId(0),
            tier: TierId(tier),
            capacity: 1000,
            remaining: rem,
            nr_conn: 0,
            write_thru: 100.0,
            read_thru: 100.0,
        }
    }

    fn state() -> ClusterState {
        let cfg = ClusterConfig::test_cluster(2, 1000, 100);
        let mut cs = ClusterState::new(&cfg);
        cs.register(WorkerId(0), RackId(0), 1e9, 0);
        cs.register(WorkerId(1), RackId(1), 1e9, 0);
        cs.heartbeat(WorkerId(0), vec![media_stats(0, 0, 0, 800)], 2, 0).unwrap();
        cs.heartbeat(WorkerId(1), vec![media_stats(1, 1, 2, 900)], 0, 0).unwrap();
        cs
    }

    #[test]
    fn snapshot_reflects_heartbeats() {
        let cs = state();
        let snap = cs.snapshot();
        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.media.len(), 2);
        assert_eq!(snap.media_stats(MediaId(0)).unwrap().remaining, 800);
        assert_eq!(snap.worker_stats(WorkerId(0)).unwrap().nr_conn, 2);
        assert_eq!(snap.num_tiers, 3);
        assert!(snap.volatile[0]);
    }

    #[test]
    fn scheduled_writes_shrink_view_until_completed() {
        let mut cs = state();
        cs.schedule_write(MediaId(0), 300);
        assert_eq!(cs.snapshot().media_stats(MediaId(0)).unwrap().remaining, 500);
        cs.complete_write(MediaId(0), 300);
        // Reservation released but consumption applied to the cached stats.
        assert_eq!(cs.snapshot().media_stats(MediaId(0)).unwrap().remaining, 500);
        // Next heartbeat refreshes authoritative numbers.
        cs.heartbeat(WorkerId(0), vec![media_stats(0, 0, 0, 500)], 0, 10).unwrap();
        assert_eq!(cs.snapshot().media_stats(MediaId(0)).unwrap().remaining, 500);
    }

    #[test]
    fn cancelled_writes_release_reservation_without_charging_capacity() {
        let mut cs = state();
        cs.schedule_write(MediaId(0), 300);
        assert_eq!(cs.scheduled_bytes(MediaId(0)), 300);
        assert_eq!(cs.snapshot().media_stats(MediaId(0)).unwrap().remaining, 500);
        cs.cancel_write(MediaId(0), 300);
        assert_eq!(cs.scheduled_bytes(MediaId(0)), 0);
        // Nothing was written: the full capacity is visible again.
        assert_eq!(cs.snapshot().media_stats(MediaId(0)).unwrap().remaining, 800);
    }

    #[test]
    fn liveness_tracking() {
        let mut cs = state();
        // heartbeat_ms=100, dead_after_missed=10 → deadline 1000 ms.
        assert!(cs.tick(900).is_empty());
        let dead = cs.tick(1500);
        assert_eq!(dead, vec![WorkerId(0), WorkerId(1)]);
        assert!(!cs.is_live(WorkerId(0)));
        assert!(cs.snapshot().workers.is_empty());
        // A heartbeat revives.
        cs.heartbeat(WorkerId(0), vec![media_stats(0, 0, 0, 800)], 0, 1600).unwrap();
        assert!(cs.is_live(WorkerId(0)));
        assert_eq!(cs.tick(1700), Vec::<WorkerId>::new());
    }

    #[test]
    fn locate_media() {
        let cs = state();
        assert_eq!(cs.locate_media(MediaId(1)), Some((WorkerId(1), TierId(2))));
        assert_eq!(cs.locate_media(MediaId(9)), None);
    }

    #[test]
    fn tier_reports_aggregate() {
        let cs = state();
        let registry = TierRegistry::standard_three();
        let reports = cs.tier_reports(&registry);
        assert_eq!(reports.len(), 2); // Memory (1 medium) + HDD (1 medium)
        let mem = reports.iter().find(|r| r.name == "Memory").unwrap();
        assert!(mem.volatile);
        assert_eq!(mem.stats.num_media, 1);
        assert_eq!(mem.stats.remaining, 800);
    }

    #[test]
    fn heartbeat_from_unknown_worker_errors() {
        let mut cs = state();
        assert!(cs.heartbeat(WorkerId(9), vec![], 0, 0).is_err());
    }
}
