//! Stand-alone remote storage (paper §2.4): an external storage system
//! mounted as a virtual extension of the namespace at a directory.
//!
//! "The directory namespace is appended with information from the remote
//! storage and provides a unified view and access methods to all data."
//! The mounted subtree is read-only through OctopusFS; applications
//! typically *import* hot external files into the cluster tiers (the
//! MixApart-style caching the paper references) and then operate on the
//! imported copies.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use octopus_common::{FsError, ReplicationVector, Result};

use crate::namespace::DirEntry;

/// Status of an external entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExternalStatus {
    /// Whether the entry is a directory.
    pub is_dir: bool,
    /// File length in bytes (0 for directories).
    pub len: u64,
}

/// A read-only external storage system (another DFS, cloud object store,
/// NAS export, ...).
pub trait ExternalCatalog: Send + Sync {
    /// Human-readable identifier (shown in errors and reports).
    fn name(&self) -> &str;

    /// Lists a directory. `rel` is relative to the catalog root; `""` is
    /// the root itself.
    fn list(&self, rel: &str) -> Result<Vec<DirEntry>>;

    /// Status of an entry.
    fn status(&self, rel: &str) -> Result<ExternalStatus>;

    /// Reads a whole file.
    fn read(&self, rel: &str) -> Result<Vec<u8>>;
}

/// Mount points and their catalogs.
#[derive(Default)]
pub struct MountTable {
    mounts: Vec<(String, Arc<dyn ExternalCatalog>)>,
}

fn normalize(path: &str) -> String {
    let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
    format!("/{}", comps.join("/"))
}

impl MountTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a catalog at `mount_point`. Rejects duplicate or nested
    /// mount points.
    pub fn add(&mut self, mount_point: &str, catalog: Arc<dyn ExternalCatalog>) -> Result<()> {
        let mp = normalize(mount_point);
        if mp == "/" {
            return Err(FsError::InvalidPath("cannot mount at /".into()));
        }
        for (existing, _) in &self.mounts {
            let nested = mp.starts_with(&format!("{existing}/"))
                || existing.starts_with(&format!("{mp}/"))
                || *existing == mp;
            if nested {
                return Err(FsError::AlreadyExists(format!(
                    "mount {mp} conflicts with existing mount {existing}"
                )));
            }
        }
        self.mounts.push((mp, catalog));
        Ok(())
    }

    /// Resolves a path to `(catalog, relative path)` when it falls under a
    /// mount point.
    pub fn resolve(&self, path: &str) -> Option<(&Arc<dyn ExternalCatalog>, String)> {
        let p = normalize(path);
        for (mp, cat) in &self.mounts {
            if p == *mp {
                return Some((cat, String::new()));
            }
            if let Some(rel) = p.strip_prefix(&format!("{mp}/")) {
                return Some((cat, rel.to_string()));
            }
        }
        None
    }

    /// All mount points.
    pub fn mount_points(&self) -> Vec<&str> {
        self.mounts.iter().map(|(m, _)| m.as_str()).collect()
    }

    /// Whether any mounts exist.
    pub fn is_empty(&self) -> bool {
        self.mounts.is_empty()
    }
}

/// A catalog backed by an in-memory map — used in tests and as the
/// reference implementation.
#[derive(Default)]
pub struct InMemoryCatalog {
    name: String,
    files: HashMap<String, Vec<u8>>,
}

impl InMemoryCatalog {
    /// Creates a named catalog.
    pub fn new(name: &str) -> Self {
        Self { name: name.to_string(), files: HashMap::new() }
    }

    /// Adds a file at a `/`-separated relative path.
    pub fn insert(&mut self, rel: &str, data: Vec<u8>) {
        self.files.insert(rel.trim_matches('/').to_string(), data);
    }
}

impl ExternalCatalog for InMemoryCatalog {
    fn name(&self) -> &str {
        &self.name
    }

    fn list(&self, rel: &str) -> Result<Vec<DirEntry>> {
        let prefix = if rel.is_empty() { String::new() } else { format!("{rel}/") };
        let mut seen = std::collections::BTreeMap::new();
        for (path, data) in &self.files {
            let Some(rest) = path.strip_prefix(&prefix) else { continue };
            match rest.split_once('/') {
                Some((dir, _)) => {
                    seen.entry(dir.to_string()).or_insert((true, 0));
                }
                None => {
                    seen.insert(rest.to_string(), (false, data.len() as u64));
                }
            }
        }
        if seen.is_empty() && !rel.is_empty() && !self.files.contains_key(rel) {
            return Err(FsError::NotFound(rel.to_string()));
        }
        Ok(seen
            .into_iter()
            .map(|(name, (is_dir, len))| DirEntry {
                name,
                is_dir,
                len,
                rv: ReplicationVector::EMPTY,
            })
            .collect())
    }

    fn status(&self, rel: &str) -> Result<ExternalStatus> {
        if rel.is_empty() {
            return Ok(ExternalStatus { is_dir: true, len: 0 });
        }
        if let Some(d) = self.files.get(rel) {
            return Ok(ExternalStatus { is_dir: false, len: d.len() as u64 });
        }
        let prefix = format!("{rel}/");
        if self.files.keys().any(|k| k.starts_with(&prefix)) {
            return Ok(ExternalStatus { is_dir: true, len: 0 });
        }
        Err(FsError::NotFound(rel.to_string()))
    }

    fn read(&self, rel: &str) -> Result<Vec<u8>> {
        self.files.get(rel).cloned().ok_or_else(|| FsError::NotFound(rel.to_string()))
    }
}

/// A catalog exposing a host directory read-only (mounting a NAS export
/// or staging area into the namespace).
pub struct LocalDirCatalog {
    name: String,
    root: PathBuf,
}

impl LocalDirCatalog {
    /// Creates a catalog rooted at an existing directory.
    pub fn new(name: &str, root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        if !root.is_dir() {
            return Err(FsError::NotFound(root.display().to_string()));
        }
        Ok(Self { name: name.to_string(), root })
    }

    fn safe_join(&self, rel: &str) -> Result<PathBuf> {
        let mut p = self.root.clone();
        for comp in rel.split('/').filter(|c| !c.is_empty()) {
            if comp == "." || comp == ".." {
                return Err(FsError::InvalidPath(format!("{rel:?} escapes the mount")));
            }
            p.push(comp);
        }
        Ok(p)
    }
}

impl ExternalCatalog for LocalDirCatalog {
    fn name(&self) -> &str {
        &self.name
    }

    fn list(&self, rel: &str) -> Result<Vec<DirEntry>> {
        let dir = self.safe_join(rel)?;
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let meta = entry.metadata()?;
            out.push(DirEntry {
                name: entry.file_name().to_string_lossy().into_owned(),
                is_dir: meta.is_dir(),
                len: if meta.is_dir() { 0 } else { meta.len() },
                rv: ReplicationVector::EMPTY,
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    fn status(&self, rel: &str) -> Result<ExternalStatus> {
        let p = self.safe_join(rel)?;
        let meta = std::fs::metadata(&p).map_err(|_| FsError::NotFound(p.display().to_string()))?;
        Ok(ExternalStatus {
            is_dir: meta.is_dir(),
            len: if meta.is_dir() { 0 } else { meta.len() },
        })
    }

    fn read(&self, rel: &str) -> Result<Vec<u8>> {
        let p = self.safe_join(rel)?;
        std::fs::read(&p).map_err(|_| FsError::NotFound(p.display().to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Arc<dyn ExternalCatalog> {
        let mut c = InMemoryCatalog::new("warehouse");
        c.insert("sales/2026/q1.csv", vec![1; 100]);
        c.insert("sales/2026/q2.csv", vec![2; 200]);
        c.insert("readme.txt", vec![3; 10]);
        Arc::new(c)
    }

    #[test]
    fn mount_table_resolution() {
        let mut mt = MountTable::new();
        mt.add("/remote/wh", catalog()).unwrap();
        assert!(mt.resolve("/remote/wh").is_some());
        let (cat, rel) = mt.resolve("/remote/wh/sales/2026/q1.csv").unwrap();
        assert_eq!(cat.name(), "warehouse");
        assert_eq!(rel, "sales/2026/q1.csv");
        assert!(mt.resolve("/remote/other").is_none());
        assert!(mt.resolve("/local/file").is_none());
        assert_eq!(mt.mount_points(), vec!["/remote/wh"]);
    }

    #[test]
    fn mount_conflicts_rejected() {
        let mut mt = MountTable::new();
        mt.add("/m", catalog()).unwrap();
        assert!(mt.add("/m", catalog()).is_err());
        assert!(mt.add("/m/nested", catalog()).is_err());
        assert!(mt.add("/", catalog()).is_err());
        mt.add("/other", catalog()).unwrap();
    }

    #[test]
    fn in_memory_catalog_listing_and_reads() {
        let c = catalog();
        let root = c.list("").unwrap();
        let names: Vec<&str> = root.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["readme.txt", "sales"]);
        assert!(root[1].is_dir);
        let q = c.list("sales/2026").unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].len, 100);
        assert_eq!(c.read("sales/2026/q2.csv").unwrap().len(), 200);
        assert!(c.read("nope").is_err());
        assert!(c.status("sales").unwrap().is_dir);
        assert!(!c.status("readme.txt").unwrap().is_dir);
        assert!(c.status("missing").is_err());
    }

    #[test]
    fn local_dir_catalog() {
        let dir = std::env::temp_dir().join(format!(
            "octopus_mount_{}_{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(dir.join("a.bin"), vec![9u8; 50]).unwrap();
        std::fs::write(dir.join("sub/b.bin"), vec![8u8; 60]).unwrap();

        let c = LocalDirCatalog::new("nas", &dir).unwrap();
        let entries = c.list("").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(c.read("sub/b.bin").unwrap(), vec![8u8; 60]);
        assert_eq!(c.status("a.bin").unwrap().len, 50);
        assert!(c.safe_join("../escape").is_err());
        assert!(LocalDirCatalog::new("missing", dir.join("nope")).is_err());
        std::fs::remove_dir_all(dir).ok();
    }
}
