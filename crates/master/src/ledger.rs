//! Global per-directory quota accounting for the sharded master.
//!
//! The sharded namespace mirrors every directory into each stripe, so a
//! directory's *local* usage inside one stripe only covers the files that
//! hash there. Enforcing tier quotas against any single stripe would
//! multiply every limit by the stripe count. The [`QuotaLedger`] is the
//! single authority instead: stripes keep their internal usage counters
//! (harmlessly unlimited), and every operation that changes a file's
//! charged bytes consults the ledger first, under its own small mutex —
//! quota checks are rare compared to the metadata hot path (zero-length
//! create/stat/list/delete never touch it).
//!
//! Keys are normalized absolute directory paths (`"/"`, `"/a"`, `"/a/b"`);
//! the master normalizes before calling in. Usage charged is the same
//! quantity [`crate::namespace::Namespace`] charges: file length × the
//! tier's pinned replica count.

use std::collections::{BTreeMap, HashSet};

use octopus_common::{FsError, Result, MAX_TIERS};

use crate::namespace::TierQuota;

#[derive(Debug, Clone, Default)]
struct Entry {
    quota: TierQuota,
    usage: [u64; MAX_TIERS],
}

/// The global quota table: one entry per directory, usage aggregated over
/// the whole subtree (exactly like the per-`Dir` counters inside a single
/// unsharded [`crate::namespace::Namespace`]).
#[derive(Debug)]
pub struct QuotaLedger {
    dirs: BTreeMap<String, Entry>,
}

impl Default for QuotaLedger {
    fn default() -> Self {
        Self::new()
    }
}

/// Every proper ancestor directory of a normalized path, shallowest first:
/// `ancestors("/a/b/c") == ["/", "/a", "/a/b"]`.
fn ancestors(path: &str) -> Vec<String> {
    let mut out = vec!["/".to_string()];
    let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
    let mut cur = String::new();
    for c in comps.iter().take(comps.len().saturating_sub(1)) {
        cur.push('/');
        cur.push_str(c);
        out.push(cur.clone());
    }
    out
}

fn check_entry(dir: &str, e: &Entry, charge: &[u64; MAX_TIERS]) -> Result<()> {
    for (t, &c) in charge.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if let Some(limit) = e.quota.per_tier[t] {
            if e.usage[t] + c > limit {
                return Err(FsError::QuotaExceeded(format!(
                    "directory {dir} tier slot {t}: {} + {c} > {limit}",
                    e.usage[t]
                )));
            }
        }
    }
    Ok(())
}

impl QuotaLedger {
    /// A ledger knowing only the root directory.
    pub fn new() -> Self {
        let mut dirs = BTreeMap::new();
        dirs.insert("/".to_string(), Entry::default());
        Self { dirs }
    }

    /// Ensures entries exist for `path` and every ancestor (mkdir -p).
    pub fn register_dirs(&mut self, path: &str) {
        for d in ancestors(path) {
            self.dirs.entry(d).or_default();
        }
        if path != "/" {
            self.dirs.entry(path.to_string()).or_default();
        }
    }

    /// Installs an entry verbatim (checkpoint/edit-log replay).
    pub fn restore_entry(&mut self, path: &str, quota: TierQuota, usage: [u64; MAX_TIERS]) {
        self.dirs.insert(path.to_string(), Entry { quota, usage });
    }

    /// Charges `charge` bytes-per-tier for a file at `file_path` against
    /// every ancestor directory, verifying all limits first.
    pub fn charge(&mut self, file_path: &str, charge: &[u64; MAX_TIERS]) -> Result<()> {
        if charge.iter().all(|&c| c == 0) {
            return Ok(());
        }
        let anc = ancestors(file_path);
        for d in &anc {
            if let Some(e) = self.dirs.get(d) {
                check_entry(d, e, charge)?;
            }
        }
        for d in anc {
            let e = self.dirs.entry(d).or_default();
            for (u, &c) in e.usage.iter_mut().zip(charge) {
                *u += c;
            }
        }
        Ok(())
    }

    /// Reverses a previous [`QuotaLedger::charge`].
    pub fn uncharge(&mut self, file_path: &str, charge: &[u64; MAX_TIERS]) {
        if charge.iter().all(|&c| c == 0) {
            return;
        }
        for d in ancestors(file_path) {
            if let Some(e) = self.dirs.get_mut(&d) {
                for (u, &c) in e.usage.iter_mut().zip(charge) {
                    *u = u.saturating_sub(c);
                }
            }
        }
    }

    /// Replaces a file's charge (`set_replication`): verifies the *net*
    /// growth per tier against every ancestor limit, then swaps old for
    /// new.
    pub fn recharge(
        &mut self,
        file_path: &str,
        old: &[u64; MAX_TIERS],
        new: &[u64; MAX_TIERS],
    ) -> Result<()> {
        let anc = ancestors(file_path);
        for d in &anc {
            let Some(e) = self.dirs.get(d) else { continue };
            for t in 0..MAX_TIERS {
                let projected = e.usage[t].saturating_sub(old[t]) + new[t];
                if let Some(limit) = e.quota.per_tier[t] {
                    if projected > limit {
                        return Err(FsError::QuotaExceeded(format!(
                            "directory {d} tier slot {t}: {projected} > {limit}",
                        )));
                    }
                }
            }
        }
        for d in anc {
            let e = self.dirs.entry(d).or_default();
            for t in 0..MAX_TIERS {
                e.usage[t] = e.usage[t].saturating_sub(old[t]) + new[t];
            }
        }
        Ok(())
    }

    /// Moves one file's charge from `src` to `dst` (file rename). Limits
    /// are verified only on directories that gain usage (ancestors of the
    /// destination that are not also ancestors of the source — a rename
    /// within one quota'd directory is always admissible).
    pub fn transfer_file(&mut self, src: &str, dst: &str, charge: &[u64; MAX_TIERS]) -> Result<()> {
        if charge.iter().all(|&c| c == 0) {
            return Ok(());
        }
        let src_anc: HashSet<String> = ancestors(src).into_iter().collect();
        let dst_anc = ancestors(dst);
        for d in &dst_anc {
            if src_anc.contains(d) {
                continue;
            }
            if let Some(e) = self.dirs.get(d) {
                check_entry(d, e, charge)?;
            }
        }
        for d in src_anc.iter().filter(|d| !dst_anc.contains(*d)) {
            if let Some(e) = self.dirs.get_mut(d) {
                for (u, &c) in e.usage.iter_mut().zip(charge) {
                    *u = u.saturating_sub(c);
                }
            }
        }
        for d in dst_anc.into_iter().filter(|d| !src_anc.contains(d)) {
            let e = self.dirs.entry(d).or_default();
            for (u, &c) in e.usage.iter_mut().zip(charge) {
                *u += c;
            }
        }
        Ok(())
    }

    /// Moves a whole directory subtree (`rename` of a directory): rewrites
    /// every entry key under `src` to live under `dst` and shifts the
    /// subtree's aggregate usage between the two ancestor chains. Verifies
    /// limits only on directories that gain usage.
    pub fn rename_subtree(&mut self, src: &str, dst: &str) -> Result<()> {
        let usage = self.dirs.get(src).map(|e| e.usage).unwrap_or_default();
        let src_anc: HashSet<String> = ancestors(src).into_iter().collect();
        let dst_anc = ancestors(dst);
        for d in &dst_anc {
            if src_anc.contains(d) {
                continue;
            }
            if let Some(e) = self.dirs.get(d) {
                check_entry(d, e, &usage)?;
            }
        }
        let prefix = format!("{src}/");
        let moved: Vec<String> = self
            .dirs
            .keys()
            .filter(|k| k.as_str() == src || k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in moved {
            if let Some(e) = self.dirs.remove(&k) {
                let nk = format!("{dst}{}", &k[src.len()..]);
                self.dirs.insert(nk, e);
            }
        }
        for d in src_anc.iter().filter(|d| !dst_anc.contains(*d)) {
            if let Some(e) = self.dirs.get_mut(d) {
                for (u, &c) in e.usage.iter_mut().zip(&usage) {
                    *u = u.saturating_sub(c);
                }
            }
        }
        for d in dst_anc.into_iter().filter(|d| !src_anc.contains(d)) {
            let e = self.dirs.entry(d).or_default();
            for (u, &c) in e.usage.iter_mut().zip(&usage) {
                *u += c;
            }
        }
        Ok(())
    }

    /// Drops a directory subtree (`delete` of a directory), refunding its
    /// aggregate usage to the ancestor chain.
    pub fn delete_subtree(&mut self, dir: &str) {
        let usage = self.dirs.get(dir).map(|e| e.usage).unwrap_or_default();
        let prefix = format!("{dir}/");
        let doomed: Vec<String> = self
            .dirs
            .keys()
            .filter(|k| k.as_str() == dir || k.starts_with(&prefix))
            .cloned()
            .collect();
        for k in doomed {
            self.dirs.remove(&k);
        }
        for d in ancestors(dir) {
            if let Some(e) = self.dirs.get_mut(&d) {
                for (u, &c) in e.usage.iter_mut().zip(&usage) {
                    *u = u.saturating_sub(c);
                }
            }
        }
    }

    /// Sets a directory's quota; rejected if current usage already exceeds
    /// any new limit (matching `Namespace::set_quota`).
    pub fn set_quota(&mut self, dir: &str, quota: TierQuota) -> Result<()> {
        let e = self.dirs.entry(dir.to_string()).or_default();
        for t in 0..MAX_TIERS {
            if let Some(limit) = quota.per_tier[t] {
                if e.usage[t] > limit {
                    return Err(FsError::QuotaExceeded(format!(
                        "directory {dir} tier slot {t}: current usage {} exceeds new limit {limit}",
                        e.usage[t]
                    )));
                }
            }
        }
        e.quota = quota;
        Ok(())
    }

    /// A directory's quota and aggregate subtree usage.
    pub fn quota_usage(&self, dir: &str) -> (TierQuota, [u64; MAX_TIERS]) {
        self.dirs.get(dir).map(|e| (e.quota, e.usage)).unwrap_or_default()
    }

    /// All entries, path-sorted (checkpointing).
    pub fn entries(&self) -> Vec<(String, TierQuota, [u64; MAX_TIERS])> {
        self.dirs.iter().map(|(k, e)| (k.clone(), e.quota, e.usage)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(tier: usize, bytes: u64) -> [u64; MAX_TIERS] {
        let mut x = [0u64; MAX_TIERS];
        x[tier] = bytes;
        x
    }

    #[test]
    fn charge_respects_ancestor_limits() {
        let mut l = QuotaLedger::new();
        l.register_dirs("/a/b");
        l.set_quota("/a", TierQuota::limit_tier(0, 100)).unwrap();
        l.charge("/a/b/f", &c(0, 80)).unwrap();
        assert!(matches!(l.charge("/a/b/g", &c(0, 30)), Err(FsError::QuotaExceeded(_))));
        // Usage aggregates on every ancestor.
        assert_eq!(l.quota_usage("/").1[0], 80);
        assert_eq!(l.quota_usage("/a").1[0], 80);
        assert_eq!(l.quota_usage("/a/b").1[0], 80);
        l.uncharge("/a/b/f", &c(0, 80));
        assert_eq!(l.quota_usage("/a").1[0], 0);
    }

    #[test]
    fn transfer_within_one_quota_dir_never_trips_its_limit() {
        let mut l = QuotaLedger::new();
        l.register_dirs("/q/x");
        l.register_dirs("/q/y");
        l.set_quota("/q", TierQuota::limit_tier(0, 100)).unwrap();
        l.charge("/q/x/f", &c(0, 100)).unwrap();
        // /q stays at 100 through the move; only gaining dirs are checked.
        l.transfer_file("/q/x/f", "/q/y/f", &c(0, 100)).unwrap();
        assert_eq!(l.quota_usage("/q").1[0], 100);
        assert_eq!(l.quota_usage("/q/x").1[0], 0);
        assert_eq!(l.quota_usage("/q/y").1[0], 100);
    }

    #[test]
    fn transfer_into_limited_dir_is_checked() {
        let mut l = QuotaLedger::new();
        l.register_dirs("/a");
        l.register_dirs("/b");
        l.set_quota("/b", TierQuota::limit_tier(1, 10)).unwrap();
        l.charge("/a/f", &c(1, 50)).unwrap();
        assert!(l.transfer_file("/a/f", "/b/f", &c(1, 50)).is_err());
        // Nothing moved on failure.
        assert_eq!(l.quota_usage("/a").1[1], 50);
        assert_eq!(l.quota_usage("/b").1[1], 0);
    }

    #[test]
    fn rename_subtree_moves_entries_and_usage() {
        let mut l = QuotaLedger::new();
        l.register_dirs("/src/deep");
        l.register_dirs("/dst");
        l.set_quota("/src/deep", TierQuota::limit_tier(0, 1000)).unwrap();
        l.charge("/src/deep/f", &c(0, 7)).unwrap();
        l.rename_subtree("/src", "/moved").unwrap();
        assert_eq!(l.quota_usage("/moved").1[0], 7);
        assert_eq!(l.quota_usage("/moved/deep").1[0], 7);
        // The moved entry kept its quota.
        assert_eq!(l.quota_usage("/moved/deep").0, TierQuota::limit_tier(0, 1000));
        assert_eq!(l.quota_usage("/").1[0], 7);
        // Old keys are gone.
        assert_eq!(l.quota_usage("/src").1[0], 0);
    }

    #[test]
    fn delete_subtree_refunds_ancestors() {
        let mut l = QuotaLedger::new();
        l.register_dirs("/a/b");
        l.charge("/a/b/f", &c(2, 42)).unwrap();
        l.delete_subtree("/a/b");
        assert_eq!(l.quota_usage("/a").1[2], 0);
        assert_eq!(l.quota_usage("/").1[2], 0);
    }

    #[test]
    fn recharge_checks_net_growth() {
        let mut l = QuotaLedger::new();
        l.register_dirs("/t");
        l.set_quota("/t", TierQuota::limit_tier(0, 100)).unwrap();
        l.charge("/t/f", &c(0, 90)).unwrap();
        // Same-size swap is fine even near the limit.
        l.recharge("/t/f", &c(0, 90), &c(0, 100)).unwrap();
        assert!(l.recharge("/t/f", &c(0, 100), &c(0, 101)).is_err());
        assert_eq!(l.quota_usage("/t").1[0], 100);
    }

    #[test]
    fn set_quota_rejects_limit_below_usage() {
        let mut l = QuotaLedger::new();
        l.register_dirs("/d");
        l.charge("/d/f", &c(0, 50)).unwrap();
        assert!(l.set_quota("/d", TierQuota::limit_tier(0, 10)).is_err());
        l.set_quota("/d", TierQuota::limit_tier(0, 50)).unwrap();
    }
}
