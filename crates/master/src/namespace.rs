//! The directory namespace: a hierarchical inode tree with files,
//! directories, per-file replication vectors, and per-tier directory quotas
//! (paper §2.1; quotas per storage medium are the multi-tenancy mechanism
//! mentioned in §1).

use std::collections::BTreeMap;
use std::sync::Arc;

use octopus_common::{
    BlockId, FsError, INodeId, IdGenerator, ReplicationVector, Result, MAX_TIERS,
};

/// Per-tier byte quotas attachable to a directory. `None` means unlimited.
/// Usage charged against a quota is *logical replicated bytes pinned to the
/// tier*: file length × the tier's replica count in the file's replication
/// vector (unspecified replicas are not charged to any tier — the system,
/// not the tenant, chooses where they land).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierQuota {
    /// Quota per tier slot; `None` = unlimited.
    pub per_tier: [Option<u64>; MAX_TIERS],
}

impl TierQuota {
    /// No limits.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Limits one tier, leaving the rest unlimited.
    pub fn limit_tier(tier: u8, bytes: u64) -> Self {
        let mut q = Self::default();
        q.per_tier[tier as usize] = Some(bytes);
        q
    }
}

/// Metadata of a regular file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// The file's replication vector.
    pub rv: ReplicationVector,
    /// Block size used when writing the file.
    pub block_size: u64,
    /// Ordered block ids.
    pub blocks: Vec<BlockId>,
    /// Total length in bytes.
    pub len: u64,
    /// Whether the file has been closed (complete) or is still being
    /// written.
    pub complete: bool,
}

#[derive(Debug, Clone)]
enum INodeKind {
    Dir { children: BTreeMap<String, INodeId>, quota: TierQuota, usage: [u64; MAX_TIERS] },
    File(FileMeta),
}

#[derive(Debug, Clone)]
struct INode {
    #[allow(dead_code)]
    id: INodeId,
    name: String,
    parent: Option<INodeId>,
    kind: INodeKind,
}

pub use octopus_common::{DirEntry, FileStatus};

/// Splits and validates an absolute path into components.
pub fn parse_path(path: &str) -> Result<Vec<&str>> {
    if !path.starts_with('/') {
        return Err(FsError::InvalidPath(format!("{path:?} is not absolute")));
    }
    let mut out = Vec::new();
    for comp in path.split('/') {
        match comp {
            "" => continue,
            "." | ".." => {
                return Err(FsError::InvalidPath(format!(
                    "{path:?} contains relative component {comp:?}"
                )))
            }
            c => out.push(c),
        }
    }
    Ok(out)
}

/// The inode tree.
#[derive(Debug)]
pub struct Namespace {
    nodes: BTreeMap<INodeId, INode>,
    root: INodeId,
    ids: Arc<IdGenerator>,
}

impl Default for Namespace {
    fn default() -> Self {
        Self::new()
    }
}

impl Namespace {
    /// A namespace containing only `/`.
    pub fn new() -> Self {
        Self::with_ids(Arc::new(IdGenerator::new(1)))
    }

    /// A namespace containing only `/`, drawing inode ids from a shared
    /// generator. The sharded master mirrors directories into every
    /// namespace stripe; sharing one generator keeps inode ids globally
    /// unique so heat tracking and the blockmap (both keyed by `INodeId`)
    /// never see collisions across stripes.
    pub fn with_ids(ids: Arc<IdGenerator>) -> Self {
        let root = INodeId(ids.next());
        let mut nodes = BTreeMap::new();
        nodes.insert(
            root,
            INode {
                id: root,
                name: String::new(),
                parent: None,
                kind: INodeKind::Dir {
                    children: BTreeMap::new(),
                    quota: TierQuota::unlimited(),
                    usage: [0; MAX_TIERS],
                },
            },
        );
        Self { nodes, root, ids }
    }

    /// The root inode.
    pub fn root(&self) -> INodeId {
        self.root
    }

    fn node(&self, id: INodeId) -> Result<&INode> {
        self.nodes.get(&id).ok_or_else(|| FsError::Internal(format!("dangling inode {id}")))
    }

    fn node_mut(&mut self, id: INodeId) -> Result<&mut INode> {
        self.nodes.get_mut(&id).ok_or_else(|| FsError::Internal(format!("dangling inode {id}")))
    }

    /// Resolves a path to its inode.
    pub fn resolve(&self, path: &str) -> Result<INodeId> {
        let comps = parse_path(path)?;
        let mut cur = self.root;
        for comp in comps {
            let node = self.node(cur)?;
            match &node.kind {
                INodeKind::Dir { children, .. } => {
                    cur = *children.get(comp).ok_or_else(|| FsError::NotFound(path.to_string()))?;
                }
                INodeKind::File(_) => return Err(FsError::NotADirectory(self.path_of(node.id))),
            }
        }
        Ok(cur)
    }

    /// The absolute path of an inode.
    pub fn path_of(&self, id: INodeId) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let Ok(node) = self.node(c) else { break };
            if node.parent.is_some() {
                parts.push(node.name.clone());
            }
            cur = node.parent;
        }
        if parts.is_empty() {
            "/".to_string()
        } else {
            parts.reverse();
            format!("/{}", parts.join("/"))
        }
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> Result<(INodeId, &'p str)> {
        let comps = parse_path(path)?;
        let Some((&name, parents)) = comps.split_last() else {
            return Err(FsError::InvalidPath("operation on root".into()));
        };
        let mut cur = self.root;
        for comp in parents {
            let node = self.node(cur)?;
            match &node.kind {
                INodeKind::Dir { children, .. } => {
                    cur =
                        *children.get(*comp).ok_or_else(|| FsError::NotFound(path.to_string()))?;
                }
                INodeKind::File(_) => return Err(FsError::NotADirectory(self.path_of(node.id))),
            }
        }
        Ok((cur, name))
    }

    /// Creates a directory. With `parents`, creates missing ancestors
    /// (like `mkdir -p`) and is idempotent on existing directories.
    pub fn mkdir(&mut self, path: &str, parents: bool) -> Result<INodeId> {
        let comps = parse_path(path)?;
        if comps.is_empty() {
            return if parents { Ok(self.root) } else { Err(FsError::AlreadyExists("/".into())) };
        }
        let mut cur = self.root;
        for (i, comp) in comps.iter().enumerate() {
            let last = i == comps.len() - 1;
            let existing = {
                let node = self.node(cur)?;
                match &node.kind {
                    INodeKind::Dir { children, .. } => children.get(*comp).copied(),
                    INodeKind::File(_) => {
                        return Err(FsError::NotADirectory(self.path_of(node.id)))
                    }
                }
            };
            match existing {
                Some(id) => {
                    if last {
                        return match &self.node(id)?.kind {
                            INodeKind::Dir { .. } if parents => Ok(id),
                            INodeKind::Dir { .. } => Err(FsError::AlreadyExists(path.to_string())),
                            INodeKind::File(_) => Err(FsError::AlreadyExists(path.to_string())),
                        };
                    }
                    cur = id;
                }
                None => {
                    if !last && !parents {
                        return Err(FsError::NotFound(path.to_string()));
                    }
                    let id = INodeId(self.ids.next());
                    self.nodes.insert(
                        id,
                        INode {
                            id,
                            name: comp.to_string(),
                            parent: Some(cur),
                            kind: INodeKind::Dir {
                                children: BTreeMap::new(),
                                quota: TierQuota::unlimited(),
                                usage: [0; MAX_TIERS],
                            },
                        },
                    );
                    if let INodeKind::Dir { children, .. } = &mut self.node_mut(cur)?.kind {
                        children.insert(comp.to_string(), id);
                    }
                    cur = id;
                }
            }
        }
        Ok(cur)
    }

    /// Creates an empty file open for writing. Parent directories must
    /// exist.
    pub fn create_file(
        &mut self,
        path: &str,
        rv: ReplicationVector,
        block_size: u64,
    ) -> Result<INodeId> {
        if block_size == 0 {
            return Err(FsError::InvalidArgument("block size must be positive".into()));
        }
        let (parent, name) = self.resolve_parent(path)?;
        {
            let node = self.node(parent)?;
            let INodeKind::Dir { children, .. } = &node.kind else {
                return Err(FsError::NotADirectory(self.path_of(parent)));
            };
            if children.contains_key(name) {
                return Err(FsError::AlreadyExists(path.to_string()));
            }
        }
        let id = INodeId(self.ids.next());
        self.nodes.insert(
            id,
            INode {
                id,
                name: name.to_string(),
                parent: Some(parent),
                kind: INodeKind::File(FileMeta {
                    rv,
                    block_size,
                    blocks: Vec::new(),
                    len: 0,
                    complete: false,
                }),
            },
        );
        if let INodeKind::Dir { children, .. } = &mut self.node_mut(parent)?.kind {
            children.insert(name.to_string(), id);
        }
        Ok(id)
    }

    /// Read access to a file's metadata.
    pub fn file_meta(&self, id: INodeId) -> Result<&FileMeta> {
        match &self.node(id)?.kind {
            INodeKind::File(meta) => Ok(meta),
            INodeKind::Dir { .. } => Err(FsError::IsADirectory(self.path_of(id))),
        }
    }

    fn file_meta_mut(&mut self, id: INodeId) -> Result<&mut FileMeta> {
        let is_dir = matches!(self.node(id)?.kind, INodeKind::Dir { .. });
        if is_dir {
            return Err(FsError::IsADirectory(self.path_of(id)));
        }
        match &mut self.node_mut(id)?.kind {
            INodeKind::File(meta) => Ok(meta),
            INodeKind::Dir { .. } => unreachable!(),
        }
    }

    /// The per-tier quota charge of growing/shrinking a file by
    /// `len_delta` bytes with vector `rv` (pinned tiers only).
    pub(crate) fn charge_of(rv: ReplicationVector, len: u64) -> [u64; MAX_TIERS] {
        let mut c = [0u64; MAX_TIERS];
        for (tier, count) in rv.iter_tiers() {
            c[tier.0 as usize] = len * count as u64;
        }
        c
    }

    /// Walks ancestors of `id` checking that adding `charge` stays within
    /// every quota, then applies it. `sign` is +1 or -1.
    fn apply_charge(&mut self, id: INodeId, charge: &[u64; MAX_TIERS], sign: i64) -> Result<()> {
        // First pass: verify (only needed when increasing).
        if sign > 0 {
            let mut cur = self.node(id)?.parent;
            while let Some(d) = cur {
                let node = self.node(d)?;
                if let INodeKind::Dir { quota, usage, .. } = &node.kind {
                    for t in 0..MAX_TIERS {
                        if let Some(limit) = quota.per_tier[t] {
                            if usage[t] + charge[t] > limit {
                                return Err(FsError::QuotaExceeded(format!(
                                    "directory {} tier slot {t}: {} + {} > {limit}",
                                    self.path_of(d),
                                    usage[t],
                                    charge[t]
                                )));
                            }
                        }
                    }
                }
                cur = node.parent;
            }
        }
        // Second pass: apply.
        let mut cur = self.node(id)?.parent;
        while let Some(d) = cur {
            let parent = self.node(d)?.parent;
            if let INodeKind::Dir { usage, .. } = &mut self.node_mut(d)?.kind {
                for t in 0..MAX_TIERS {
                    if sign > 0 {
                        usage[t] += charge[t];
                    } else {
                        usage[t] = usage[t].saturating_sub(charge[t]);
                    }
                }
            }
            cur = parent;
        }
        Ok(())
    }

    /// Appends a block to an open file, charging tier quotas.
    pub fn add_block(&mut self, file: INodeId, block: BlockId, len: u64) -> Result<()> {
        let (rv, complete) = {
            let meta = self.file_meta(file)?;
            (meta.rv, meta.complete)
        };
        if complete {
            return Err(FsError::InvalidArgument(format!(
                "file {} is complete; cannot append blocks",
                self.path_of(file)
            )));
        }
        let charge = Self::charge_of(rv, len);
        self.apply_charge(file, &charge, 1)?;
        let meta = self.file_meta_mut(file)?;
        meta.blocks.push(block);
        meta.len += len;
        Ok(())
    }

    /// Reverses the most recent [`Namespace::add_block`] of an open file,
    /// refunding the quota charge and length. Only the *last* block may be
    /// abandoned — pipeline recovery gives up on a block whose write
    /// failed before requesting a fresh placement, and nothing can have
    /// been appended after it while the client holds the lease.
    pub fn remove_last_block(&mut self, file: INodeId, block: BlockId, len: u64) -> Result<()> {
        let (rv, complete, last) = {
            let meta = self.file_meta(file)?;
            (meta.rv, meta.complete, meta.blocks.last().copied())
        };
        if complete {
            return Err(FsError::InvalidArgument(format!(
                "file {} is complete; cannot abandon blocks",
                self.path_of(file)
            )));
        }
        if last != Some(block) {
            return Err(FsError::InvalidArgument(format!(
                "{block} is not the last block of {}",
                self.path_of(file)
            )));
        }
        let charge = Self::charge_of(rv, len);
        self.apply_charge(file, &charge, -1)?;
        let meta = self.file_meta_mut(file)?;
        meta.blocks.pop();
        meta.len = meta.len.saturating_sub(len);
        Ok(())
    }

    /// Marks a file complete (closed).
    pub fn finalize_file(&mut self, file: INodeId) -> Result<()> {
        let meta = self.file_meta_mut(file)?;
        meta.complete = true;
        Ok(())
    }

    /// Reopens a complete file for appending.
    pub fn reopen_file(&mut self, file: INodeId) -> Result<()> {
        let meta = self.file_meta_mut(file)?;
        if !meta.complete {
            return Err(FsError::LeaseConflict(format!("{} is already open for writing", file)));
        }
        meta.complete = false;
        Ok(())
    }

    /// Replaces a file's replication vector, adjusting quota usage.
    /// Returns the previous vector.
    pub fn set_replication(
        &mut self,
        path: &str,
        rv: ReplicationVector,
    ) -> Result<ReplicationVector> {
        let id = self.resolve(path)?;
        let (old, len) = {
            let meta = self.file_meta(id)?;
            (meta.rv, meta.len)
        };
        // Refund the old pinned charge, apply the new one.
        let old_charge = Self::charge_of(old, len);
        let new_charge = Self::charge_of(rv, len);
        self.apply_charge(id, &old_charge, -1)?;
        if let Err(e) = self.apply_charge(id, &new_charge, 1) {
            // Roll back.
            self.apply_charge(id, &old_charge, 1)?;
            return Err(e);
        }
        self.file_meta_mut(id)?.rv = rv;
        Ok(old)
    }

    /// Status of a path.
    pub fn status(&self, path: &str) -> Result<FileStatus> {
        let id = self.resolve(path)?;
        let node = self.node(id)?;
        Ok(match &node.kind {
            INodeKind::Dir { .. } => FileStatus {
                id,
                path: self.path_of(id),
                is_dir: true,
                len: 0,
                rv: ReplicationVector::EMPTY,
                block_size: 0,
                complete: true,
            },
            INodeKind::File(meta) => FileStatus {
                id,
                path: self.path_of(id),
                is_dir: false,
                len: meta.len,
                rv: meta.rv,
                block_size: meta.block_size,
                complete: meta.complete,
            },
        })
    }

    /// Lists a directory.
    pub fn list(&self, path: &str) -> Result<Vec<DirEntry>> {
        let id = self.resolve(path)?;
        let node = self.node(id)?;
        let INodeKind::Dir { children, .. } = &node.kind else {
            return Err(FsError::NotADirectory(path.to_string()));
        };
        children
            .iter()
            .map(|(name, &cid)| {
                let child = self.node(cid)?;
                Ok(match &child.kind {
                    INodeKind::Dir { .. } => DirEntry {
                        name: name.clone(),
                        is_dir: true,
                        len: 0,
                        rv: ReplicationVector::EMPTY,
                    },
                    INodeKind::File(meta) => {
                        DirEntry { name: name.clone(), is_dir: false, len: meta.len, rv: meta.rv }
                    }
                })
            })
            .collect()
    }

    /// Per-tier usage of the subtree rooted at `id` (files only).
    fn subtree_charge(&self, id: INodeId) -> Result<[u64; MAX_TIERS]> {
        let node = self.node(id)?;
        Ok(match &node.kind {
            INodeKind::File(meta) => Self::charge_of(meta.rv, meta.len),
            INodeKind::Dir { usage, .. } => *usage,
        })
    }

    /// Renames `src` to `dst`. `dst` must not exist and its parent must be
    /// an existing directory. Moving a directory into its own subtree is
    /// rejected. Quota usage transfers from the old ancestors to the new.
    pub fn rename(&mut self, src: &str, dst: &str) -> Result<()> {
        let src_id = self.resolve(src)?;
        if src_id == self.root {
            return Err(FsError::InvalidPath("cannot rename /".into()));
        }
        let (dst_parent, dst_name) = self.resolve_parent(dst)?;
        {
            let node = self.node(dst_parent)?;
            let INodeKind::Dir { children, .. } = &node.kind else {
                return Err(FsError::NotADirectory(self.path_of(dst_parent)));
            };
            if children.contains_key(dst_name) {
                return Err(FsError::AlreadyExists(dst.to_string()));
            }
        }
        // Reject moving a directory under itself.
        let mut cur = Some(dst_parent);
        while let Some(c) = cur {
            if c == src_id {
                return Err(FsError::InvalidPath(format!(
                    "cannot move {src} into its own subtree {dst}"
                )));
            }
            cur = self.node(c)?.parent;
        }

        let charge = self.subtree_charge(src_id)?;
        let old_parent = self.node(src_id)?.parent.expect("non-root has parent");
        let old_name = self.node(src_id)?.name.clone();

        // Refund from the old ancestor chain, charge the new one (with
        // quota verification); roll back on failure.
        self.apply_charge(src_id, &charge, -1)?;

        // Temporarily link under the new parent for the charge walk: we
        // verify against the *new* ancestors by walking from dst_parent.
        let verify = (|| -> Result<()> {
            let mut cur = Some(dst_parent);
            while let Some(d) = cur {
                let node = self.node(d)?;
                if let INodeKind::Dir { quota, usage, .. } = &node.kind {
                    for t in 0..MAX_TIERS {
                        if let Some(limit) = quota.per_tier[t] {
                            if usage[t] + charge[t] > limit {
                                return Err(FsError::QuotaExceeded(format!(
                                    "directory {} tier slot {t}",
                                    self.path_of(d)
                                )));
                            }
                        }
                    }
                }
                cur = node.parent;
            }
            Ok(())
        })();
        if let Err(e) = verify {
            self.apply_charge(src_id, &charge, 1)?;
            return Err(e);
        }

        // Unlink from the old parent.
        if let INodeKind::Dir { children, .. } = &mut self.node_mut(old_parent)?.kind {
            children.remove(&old_name);
        }
        // Link under the new parent.
        if let INodeKind::Dir { children, .. } = &mut self.node_mut(dst_parent)?.kind {
            children.insert(dst_name.to_string(), src_id);
        }
        {
            let node = self.node_mut(src_id)?;
            node.parent = Some(dst_parent);
            node.name = dst_name.to_string();
        }
        // Apply the charge along the new chain.
        let mut cur = Some(dst_parent);
        while let Some(d) = cur {
            let parent = self.node(d)?.parent;
            if let INodeKind::Dir { usage, .. } = &mut self.node_mut(d)?.kind {
                for (u, c) in usage.iter_mut().zip(charge.iter()) {
                    *u += c;
                }
            }
            cur = parent;
        }
        Ok(())
    }

    /// Deletes a path. Directories require `recursive` unless empty.
    /// Returns the block ids of every deleted file (for invalidation at
    /// the workers).
    pub fn delete(&mut self, path: &str, recursive: bool) -> Result<Vec<BlockId>> {
        let id = self.resolve(path)?;
        if id == self.root {
            return Err(FsError::InvalidPath("cannot delete /".into()));
        }
        if let INodeKind::Dir { children, .. } = &self.node(id)?.kind {
            if !children.is_empty() && !recursive {
                return Err(FsError::DirectoryNotEmpty(path.to_string()));
            }
        }
        let charge = self.subtree_charge(id)?;
        self.apply_charge(id, &charge, -1)?;

        // Collect the subtree.
        let mut stack = vec![id];
        let mut blocks = Vec::new();
        let mut to_remove = Vec::new();
        while let Some(n) = stack.pop() {
            to_remove.push(n);
            match &self.node(n)?.kind {
                INodeKind::Dir { children, .. } => stack.extend(children.values().copied()),
                INodeKind::File(meta) => blocks.extend(meta.blocks.iter().copied()),
            }
        }
        let parent = self.node(id)?.parent.expect("non-root");
        let name = self.node(id)?.name.clone();
        if let INodeKind::Dir { children, .. } = &mut self.node_mut(parent)?.kind {
            children.remove(&name);
        }
        for n in to_remove {
            self.nodes.remove(&n);
        }
        Ok(blocks)
    }

    /// Sets a directory's per-tier quota. Fails if current usage already
    /// exceeds the new limit.
    pub fn set_quota(&mut self, path: &str, quota: TierQuota) -> Result<()> {
        let id = self.resolve(path)?;
        let is_root = id == self.root;
        let node = self.node_mut(id)?;
        match &mut node.kind {
            INodeKind::Dir { quota: q, usage, .. } => {
                for (u, limit) in usage.iter().zip(quota.per_tier.iter()) {
                    if let Some(limit) = limit {
                        if u > limit {
                            return Err(FsError::QuotaExceeded(format!(
                                "current usage {u} exceeds new quota {limit}"
                            )));
                        }
                    }
                }
                *q = quota;
                let _ = is_root;
                Ok(())
            }
            INodeKind::File(_) => Err(FsError::NotADirectory(path.to_string())),
        }
    }

    /// A directory's quota and current per-tier usage.
    pub fn quota_usage(&self, path: &str) -> Result<(TierQuota, [u64; MAX_TIERS])> {
        let id = self.resolve(path)?;
        match &self.node(id)?.kind {
            INodeKind::Dir { quota, usage, .. } => Ok((*quota, *usage)),
            INodeKind::File(_) => Err(FsError::NotADirectory(path.to_string())),
        }
    }

    /// `(files, directories)` counts (directories include `/`).
    pub fn counts(&self) -> (usize, usize) {
        let mut files = 0;
        let mut dirs = 0;
        for n in self.nodes.values() {
            match n.kind {
                INodeKind::Dir { .. } => dirs += 1,
                INodeKind::File(_) => files += 1,
            }
        }
        (files, dirs)
    }

    /// All directories as `(path, quota)`, parents before children (sorted
    /// by path). Used by checkpointing.
    pub fn iter_dirs(&self) -> Vec<(String, TierQuota)> {
        let mut dirs: Vec<(String, TierQuota)> = self
            .nodes
            .iter()
            .filter_map(|(&id, n)| match &n.kind {
                INodeKind::Dir { quota, .. } => Some((self.path_of(id), *quota)),
                INodeKind::File(_) => None,
            })
            .collect();
        dirs.sort_by(|a, b| a.0.cmp(&b.0));
        dirs
    }

    /// Removes a file leaf from the tree *without* touching its blocks,
    /// refunding its quota charge from the ancestor chain, and returns the
    /// inode id and metadata. Together with [`Namespace::implant_file`]
    /// this moves a file between namespace stripes when a rename changes
    /// which stripe its path hashes to.
    pub fn extract_file(&mut self, path: &str) -> Result<(INodeId, FileMeta)> {
        let id = self.resolve(path)?;
        let meta = self.file_meta(id)?.clone();
        let charge = Self::charge_of(meta.rv, meta.len);
        self.apply_charge(id, &charge, -1)?;
        let parent = self.node(id)?.parent.expect("files are never the root");
        let name = self.node(id)?.name.clone();
        if let INodeKind::Dir { children, .. } = &mut self.node_mut(parent)?.kind {
            children.remove(&name);
        }
        self.nodes.remove(&id);
        Ok((id, meta))
    }

    /// Inserts a file node with a caller-provided inode id and metadata
    /// (the inverse of [`Namespace::extract_file`]). The parent directory
    /// must exist and the name must be free; the file's quota charge is
    /// applied (and verified) along the new ancestor chain, unwinding the
    /// insertion on failure. The internal id generator is advanced past
    /// `id` so future allocations never collide.
    pub fn implant_file(&mut self, path: &str, id: INodeId, meta: FileMeta) -> Result<()> {
        let (parent, name) = self.resolve_parent(path)?;
        {
            let node = self.node(parent)?;
            let INodeKind::Dir { children, .. } = &node.kind else {
                return Err(FsError::NotADirectory(self.path_of(parent)));
            };
            if children.contains_key(name) {
                return Err(FsError::AlreadyExists(path.to_string()));
            }
        }
        if self.nodes.contains_key(&id) {
            return Err(FsError::Internal(format!("inode {id} already present")));
        }
        self.ids.ensure_above(id.0);
        let charge = Self::charge_of(meta.rv, meta.len);
        self.nodes.insert(
            id,
            INode { id, name: name.to_string(), parent: Some(parent), kind: INodeKind::File(meta) },
        );
        if let INodeKind::Dir { children, .. } = &mut self.node_mut(parent)?.kind {
            children.insert(name.to_string(), id);
        }
        if let Err(e) = self.apply_charge(id, &charge, 1) {
            // Unwind: the charge was never applied, so only unlink.
            let name = name.to_string();
            if let INodeKind::Dir { children, .. } = &mut self.node_mut(parent)?.kind {
                children.remove(&name);
            }
            self.nodes.remove(&id);
            return Err(e);
        }
        Ok(())
    }

    /// Iterates all files as `(id, path, meta)`.
    pub fn iter_files(&self) -> Vec<(INodeId, String, &FileMeta)> {
        self.nodes
            .iter()
            .filter_map(|(&id, n)| match &n.kind {
                INodeKind::File(meta) => Some((id, self.path_of(id), meta)),
                INodeKind::Dir { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv3() -> ReplicationVector {
        ReplicationVector::from_replication_factor(3)
    }

    #[test]
    fn mkdir_and_resolve() {
        let mut ns = Namespace::new();
        let d = ns.mkdir("/a/b/c", true).unwrap();
        assert_eq!(ns.resolve("/a/b/c").unwrap(), d);
        assert_eq!(ns.path_of(d), "/a/b/c");
        assert!(ns.mkdir("/a/b/c", false).is_err());
        assert_eq!(ns.mkdir("/a/b/c", true).unwrap(), d); // idempotent with -p
        assert!(matches!(ns.mkdir("/x/y", false), Err(FsError::NotFound(_))));
        ns.mkdir("/x", false).unwrap();
        ns.mkdir("/x/y", false).unwrap();
    }

    #[test]
    fn path_validation() {
        let mut ns = Namespace::new();
        assert!(matches!(ns.mkdir("relative", true), Err(FsError::InvalidPath(_))));
        assert!(matches!(ns.mkdir("/a/../b", true), Err(FsError::InvalidPath(_))));
        assert!(ns.mkdir("//a///b", true).is_ok()); // empty components collapse
        assert_eq!(ns.resolve("/a/b").unwrap(), ns.resolve("//a///b/").unwrap());
    }

    #[test]
    fn create_file_and_blocks() {
        let mut ns = Namespace::new();
        ns.mkdir("/data", true).unwrap();
        let f = ns.create_file("/data/f1", rv3(), 128).unwrap();
        ns.add_block(f, BlockId(1), 128).unwrap();
        ns.add_block(f, BlockId(2), 64).unwrap();
        ns.finalize_file(f).unwrap();
        let st = ns.status("/data/f1").unwrap();
        assert!(!st.is_dir);
        assert_eq!(st.len, 192);
        assert!(st.complete);
        assert_eq!(ns.file_meta(f).unwrap().blocks, vec![BlockId(1), BlockId(2)]);
        // Cannot append after close.
        assert!(ns.add_block(f, BlockId(3), 10).is_err());
        // Duplicate create fails.
        assert!(matches!(ns.create_file("/data/f1", rv3(), 128), Err(FsError::AlreadyExists(_))));
        // Create under a file fails.
        assert!(matches!(ns.create_file("/data/f1/x", rv3(), 128), Err(FsError::NotADirectory(_))));
    }

    #[test]
    fn list_is_sorted_and_typed() {
        let mut ns = Namespace::new();
        ns.mkdir("/d/sub", true).unwrap();
        let f = ns.create_file("/d/bfile", rv3(), 128).unwrap();
        ns.add_block(f, BlockId(1), 100).unwrap();
        let entries = ns.list("/d").unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "bfile");
        assert!(!entries[0].is_dir);
        assert_eq!(entries[0].len, 100);
        assert_eq!(entries[1].name, "sub");
        assert!(entries[1].is_dir);
        assert!(matches!(ns.list("/d/bfile"), Err(FsError::NotADirectory(_))));
    }

    #[test]
    fn rename_file_and_directory() {
        let mut ns = Namespace::new();
        ns.mkdir("/a", true).unwrap();
        ns.mkdir("/b", true).unwrap();
        let f = ns.create_file("/a/f", rv3(), 128).unwrap();
        ns.rename("/a/f", "/b/g").unwrap();
        assert!(ns.resolve("/a/f").is_err());
        assert_eq!(ns.resolve("/b/g").unwrap(), f);
        assert_eq!(ns.path_of(f), "/b/g");

        ns.rename("/a", "/b/a-moved").unwrap();
        assert!(ns.resolve("/b/a-moved").is_ok());
        // Destination exists → error.
        ns.mkdir("/c", true).unwrap();
        assert!(matches!(ns.rename("/b", "/c"), Err(FsError::AlreadyExists(_))));
        // Cycle rejected.
        assert!(matches!(ns.rename("/b", "/b/a-moved/x"), Err(FsError::InvalidPath(_))));
    }

    #[test]
    fn delete_semantics() {
        let mut ns = Namespace::new();
        ns.mkdir("/d/s", true).unwrap();
        let f1 = ns.create_file("/d/f1", rv3(), 128).unwrap();
        ns.add_block(f1, BlockId(10), 128).unwrap();
        let f2 = ns.create_file("/d/s/f2", rv3(), 128).unwrap();
        ns.add_block(f2, BlockId(20), 128).unwrap();
        ns.add_block(f2, BlockId(21), 128).unwrap();

        assert!(matches!(ns.delete("/d", false), Err(FsError::DirectoryNotEmpty(_))));
        let mut blocks = ns.delete("/d", true).unwrap();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![BlockId(10), BlockId(20), BlockId(21)]);
        assert!(ns.resolve("/d").is_err());
        let (files, dirs) = ns.counts();
        assert_eq!(files, 0);
        assert_eq!(dirs, 1); // only root
    }

    #[test]
    fn delete_empty_dir_without_recursive() {
        let mut ns = Namespace::new();
        ns.mkdir("/empty", true).unwrap();
        assert!(ns.delete("/empty", false).unwrap().is_empty());
    }

    #[test]
    fn quota_enforced_on_pinned_tiers() {
        let mut ns = Namespace::new();
        ns.mkdir("/tenant", true).unwrap();
        // Limit tier 0 (memory) to 100 bytes.
        ns.set_quota("/tenant", TierQuota::limit_tier(0, 100)).unwrap();
        let rv = ReplicationVector::msh(1, 0, 2);
        let f = ns.create_file("/tenant/f", rv, 128).unwrap();
        ns.add_block(f, BlockId(1), 80).unwrap(); // memory charge 80
        let err = ns.add_block(f, BlockId(2), 80); // would be 160 > 100
        assert!(matches!(err, Err(FsError::QuotaExceeded(_))));
        let (_, usage) = ns.quota_usage("/tenant").unwrap();
        assert_eq!(usage[0], 80);
        assert_eq!(usage[2], 160); // HDD×2, unlimited

        // Unspecified replicas are not charged.
        let f2 = ns
            .create_file("/tenant/g", ReplicationVector::from_replication_factor(3), 128)
            .unwrap();
        ns.add_block(f2, BlockId(3), 1000).unwrap();
        let (_, usage) = ns.quota_usage("/tenant").unwrap();
        assert_eq!(usage[0], 80);
    }

    #[test]
    fn quota_adjusts_on_set_replication_and_delete() {
        let mut ns = Namespace::new();
        ns.mkdir("/t", true).unwrap();
        ns.set_quota("/t", TierQuota::limit_tier(1, 1000)).unwrap();
        let f = ns.create_file("/t/f", ReplicationVector::msh(0, 1, 0), 128).unwrap();
        ns.add_block(f, BlockId(1), 600).unwrap();
        // Doubling the SSD count would need 1200 > 1000.
        assert!(matches!(
            ns.set_replication("/t/f", ReplicationVector::msh(0, 2, 0)),
            Err(FsError::QuotaExceeded(_))
        ));
        // The failed attempt must not corrupt usage.
        let (_, usage) = ns.quota_usage("/t").unwrap();
        assert_eq!(usage[1], 600);
        // Dropping the pin refunds.
        ns.set_replication("/t/f", ReplicationVector::msh(0, 0, 2)).unwrap();
        let (_, usage) = ns.quota_usage("/t").unwrap();
        assert_eq!(usage[1], 0);
        assert_eq!(usage[2], 1200);
        ns.delete("/t/f", false).unwrap();
        let (_, usage) = ns.quota_usage("/t").unwrap();
        assert_eq!(usage[2], 0);
    }

    #[test]
    fn quota_transfers_on_rename() {
        let mut ns = Namespace::new();
        ns.mkdir("/a", true).unwrap();
        ns.mkdir("/b", true).unwrap();
        ns.set_quota("/b", TierQuota::limit_tier(2, 100)).unwrap();
        let f = ns.create_file("/a/f", ReplicationVector::msh(0, 0, 1), 128).unwrap();
        ns.add_block(f, BlockId(1), 500).unwrap();
        // Moving into /b would exceed its HDD quota.
        assert!(matches!(ns.rename("/a/f", "/b/f"), Err(FsError::QuotaExceeded(_))));
        // Usage stays on /a after the failed move.
        let (_, usage_a) = ns.quota_usage("/a").unwrap();
        assert_eq!(usage_a[2], 500);
        // A small file moves fine and carries its usage.
        let g = ns.create_file("/a/g", ReplicationVector::msh(0, 0, 1), 128).unwrap();
        ns.add_block(g, BlockId(2), 50).unwrap();
        ns.rename("/a/g", "/b/g").unwrap();
        let (_, usage_b) = ns.quota_usage("/b").unwrap();
        assert_eq!(usage_b[2], 50);
        let (_, usage_a) = ns.quota_usage("/a").unwrap();
        assert_eq!(usage_a[2], 500);
    }

    #[test]
    fn set_replication_returns_old_vector() {
        let mut ns = Namespace::new();
        let f = ns.create_file("/f", ReplicationVector::msh(1, 0, 2), 128).unwrap();
        ns.add_block(f, BlockId(1), 10).unwrap();
        let old = ns.set_replication("/f", ReplicationVector::msh(1, 1, 1)).unwrap();
        assert_eq!(old, ReplicationVector::msh(1, 0, 2));
        assert_eq!(ns.file_meta(f).unwrap().rv, ReplicationVector::msh(1, 1, 1));
    }

    #[test]
    fn iter_files_and_counts() {
        let mut ns = Namespace::new();
        ns.mkdir("/a/b", true).unwrap();
        ns.create_file("/a/f1", rv3(), 128).unwrap();
        ns.create_file("/a/b/f2", rv3(), 128).unwrap();
        let files = ns.iter_files();
        assert_eq!(files.len(), 2);
        let paths: Vec<&str> = files.iter().map(|(_, p, _)| p.as_str()).collect();
        assert!(paths.contains(&"/a/f1"));
        assert!(paths.contains(&"/a/b/f2"));
        assert_eq!(ns.counts(), (2, 3));
    }

    #[test]
    fn status_of_root() {
        let ns = Namespace::new();
        let st = ns.status("/").unwrap();
        assert!(st.is_dir);
        assert_eq!(st.path, "/");
    }
}
