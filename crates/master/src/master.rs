//! The [`Master`] facade: the client-facing namespace/block API (Table 1),
//! heartbeat and block-report processing, and the replication monitor (§5).
//!
//! # Sharded metadata (ROADMAP item 1)
//!
//! The namespace and block map are striped across `config.master_shards`
//! independently locked shards. Directories are mirrored into every
//! namespace shard; a file lives in exactly one shard, chosen by hashing
//! its *parsed* path components (so `//a///b` and `/a/b` land together).
//! Blocks stripe by `block_id % shards`. Single-path operations touch one
//! shard; cross-shard operations (rename, directory ops) take shard locks
//! in ascending index order — see DESIGN.md §11 for the full lock-order
//! discipline. Durability is group-committed: mutations stage their
//! [`EditOp`] under the shard lock and wait for a batched fsync after
//! releasing it, so the disk sync never serializes the namespace.

use octopus_common::lockstat::{
    LockStats, StatMutex, StatMutexGuard, StatReadGuard, StatRwLock, StatWriteGuard,
};
use octopus_common::metrics::{BucketLayout, Counter, Histogram, Labels, MetricsRegistry};
use octopus_common::trace::TraceCollector;
use octopus_common::{
    AuditRing, Block, BlockId, BlockTouches, ClientLocation, ClusterConfig, ClusterStatusReport,
    DecisionEvent, DecisionKind, DecisionRound, FsError, GenStamp, HeatInfo, HeatTracker, HotFile,
    INodeId, IdGenerator, LocatedBlock, Location, MediaId, MediaStats, RackId, ReplicationVector,
    Result, SeriesPoint, SeriesRing, StorageTier, StorageTierReport, TierId, WorkerId,
    WorkerStatusLine, MAX_TIERS,
};
use octopus_policies::{
    build_placement_policy, build_retrieval_policy, choose_replica_to_remove_explained,
    PlacementPolicy, PlacementRequest, RetrievalPolicy, Temperature, TierClassifier,
};

use crate::autotier::{AutoTierConfig, MigrationDecision, MigrationDirection};
use crate::blockmap::{replication_state, BlockMap};
use crate::cluster::ClusterState;
use crate::editlog::{decode_stream, encode_image, EditLog, EditOp, GroupCommitLog};
use crate::lease::{ClientId, LeaseManager};
use crate::ledger::QuotaLedger;
use crate::mount::{ExternalCatalog, MountTable};
use crate::namespace::{parse_path, DirEntry, FileStatus, Namespace, TierQuota};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Fraction of known blocks that must have at least one confirmed replica
/// before a restarted master leaves safe mode automatically.
const SAFE_MODE_THRESHOLD: f64 = 0.999;

/// How long a client write lease lives without renewal, in heartbeat
/// intervals (client operations renew implicitly).
const LEASE_HEARTBEATS: u64 = 20;

/// A data-movement instruction produced by the replication monitor and
/// executed by workers (§5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationTask {
    /// Copy the block from one of `sources` (ordered best-first by the
    /// retrieval policy) to `target`.
    Copy {
        /// The block to copy.
        block: Block,
        /// Candidate source replicas, best first.
        sources: Vec<Location>,
        /// Destination medium.
        target: Location,
    },
    /// Delete the replica at `location`.
    Delete {
        /// The block to trim.
        block: Block,
        /// The replica to remove.
        location: Location,
    },
}

/// Normalizes a path to its canonical form: `/` + parsed components
/// joined by `/` (so `//a///b/` becomes `/a/b`). All shard hashing, lease
/// keys, and quota-ledger keys use normalized paths.
fn normalize(path: &str) -> Result<String> {
    let comps = parse_path(path)?;
    if comps.is_empty() {
        return Ok("/".to_string());
    }
    Ok(format!("/{}", comps.join("/")))
}

/// The namespace shard a path hashes to: FNV-1a over the *parsed*
/// components (with a separator folded in per component), never the raw
/// string — `parse_path` collapses empty components, and aliased
/// spellings of one path must land in one shard.
fn shard_index(path: &str, n: usize) -> Result<usize> {
    let comps = parse_path(path)?;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for c in comps {
        h ^= u64::from(b'/');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        for &b in c.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    Ok((h % n as u64) as usize)
}

/// Parent of a normalized path (`/a/b` → `/a`, `/a` → `/`, `/` → `/`).
fn parent_path(npath: &str) -> String {
    match npath.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => npath[..i].to_string(),
    }
}

/// Splits a mutable slice of shard write guards into the guards at `i`
/// and `j` (the two shards a cross-shard file rename touches). `i == j`
/// yields the single guard and `None`.
fn pair_mut<'a, 'l, T>(
    guards: &'a mut [StatWriteGuard<'l, T>],
    i: usize,
    j: usize,
) -> (&'a mut T, Option<&'a mut T>) {
    if i == j {
        (&mut *guards[i], None)
    } else if i < j {
        let (lo, hi) = guards.split_at_mut(j);
        (&mut *lo[i], Some(&mut *hi[0]))
    } else {
        let (lo, hi) = guards.split_at_mut(i);
        (&mut *hi[0], Some(&mut *lo[j]))
    }
}

/// The metadata operations the master profiles individually. Every public
/// metadata entry point maps to one of these; its latency lands in
/// `master_meta_op_us{op=…}` split into lock-wait / work / edit-log
/// segments (the contention observatory feeding ROADMAP item 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetaOp {
    Mkdir,
    Create,
    AddBlock,
    ReassignBlock,
    AbandonBlock,
    CommitReplica,
    AbortReplica,
    Append,
    Complete,
    Locations,
    Stat,
    List,
    SetReplication,
    Rename,
    Delete,
    SetQuota,
    Heartbeat,
    BlockReport,
}

impl MetaOp {
    const ALL: [MetaOp; 18] = [
        MetaOp::Mkdir,
        MetaOp::Create,
        MetaOp::AddBlock,
        MetaOp::ReassignBlock,
        MetaOp::AbandonBlock,
        MetaOp::CommitReplica,
        MetaOp::AbortReplica,
        MetaOp::Append,
        MetaOp::Complete,
        MetaOp::Locations,
        MetaOp::Stat,
        MetaOp::List,
        MetaOp::SetReplication,
        MetaOp::Rename,
        MetaOp::Delete,
        MetaOp::SetQuota,
        MetaOp::Heartbeat,
        MetaOp::BlockReport,
    ];

    fn label(self) -> &'static str {
        match self {
            MetaOp::Mkdir => "mkdir",
            MetaOp::Create => "create",
            MetaOp::AddBlock => "add_block",
            MetaOp::ReassignBlock => "reassign_block",
            MetaOp::AbandonBlock => "abandon_block",
            MetaOp::CommitReplica => "commit_replica",
            MetaOp::AbortReplica => "abort_replica",
            MetaOp::Append => "append",
            MetaOp::Complete => "complete",
            MetaOp::Locations => "get_block_locations",
            MetaOp::Stat => "stat",
            MetaOp::List => "list",
            MetaOp::SetReplication => "set_replication",
            MetaOp::Rename => "rename",
            MetaOp::Delete => "delete",
            MetaOp::SetQuota => "set_quota",
            MetaOp::Heartbeat => "heartbeat",
            MetaOp::BlockReport => "block_report",
        }
    }
}

/// Cached metric handles for one [`MetaOp`], so the hot path never takes
/// the registry map lock.
struct OpStat {
    ops: Counter,
    errors: Counter,
    total: Histogram,
    lock_wait: Histogram,
    work: Histogram,
    log: Histogram,
}

/// One [`OpStat`] per [`MetaOp`], indexed by discriminant.
struct MetaOpStats(Vec<OpStat>);

impl MetaOpStats {
    fn register(reg: &MetricsRegistry) -> Self {
        MetaOpStats(
            MetaOp::ALL
                .iter()
                .map(|&op| {
                    let l = Labels::op(op.label());
                    let micro = BucketLayout::Micro;
                    OpStat {
                        ops: reg.counter("master_meta_ops_total", l),
                        errors: reg.counter("master_meta_op_errors_total", l),
                        total: reg.histogram_with("master_meta_op_us", l, micro),
                        lock_wait: reg.histogram_with("master_meta_op_lock_wait_us", l, micro),
                        work: reg.histogram_with("master_meta_op_work_us", l, micro),
                        log: reg.histogram_with("master_meta_op_log_us", l, micro),
                    }
                })
                .collect(),
        )
    }
}

/// Per-call measurement context for one metadata operation: accumulates
/// lock-wait and edit-log time as the op touches those resources, then
/// [`OpCtx::finish`] stamps total / lock-wait / log / work (= the
/// remainder, i.e. time under the lock doing namespace work plus the thin
/// return path) into the op's histograms.
struct OpCtx<'m> {
    stat: &'m OpStat,
    start: Instant,
    lock_wait_us: Cell<u64>,
    log_us: Cell<u64>,
}

impl OpCtx<'_> {
    /// Acquires a write lock, folding its measured wait into this op's
    /// lock-wait segment.
    fn write<'a, T>(&self, lock: &'a StatRwLock<T>) -> StatWriteGuard<'a, T> {
        let g = lock.write();
        self.lock_wait_us.set(self.lock_wait_us.get() + g.wait_us());
        g
    }

    /// Acquires a read lock, folding its measured wait into this op's
    /// lock-wait segment.
    fn read<'a, T>(&self, lock: &'a StatRwLock<T>) -> StatReadGuard<'a, T> {
        let g = lock.read();
        self.lock_wait_us.set(self.lock_wait_us.get() + g.wait_us());
        g
    }

    /// Acquires a mutex, folding its measured wait into this op's
    /// lock-wait segment.
    fn lock<'a, T>(&self, lock: &'a StatMutex<T>) -> StatMutexGuard<'a, T> {
        let g = lock.lock();
        self.lock_wait_us.set(self.lock_wait_us.get() + g.wait_us());
        g
    }

    /// Waits for a staged edit to become durable (the group commit),
    /// timing the wait into this op's log segment. Called *after* the
    /// shard lock is released, so slow fsyncs never hold up other ops.
    fn wait_durable(&self, log: &GroupCommitLog, seq: u64) -> Result<()> {
        let t = Instant::now();
        let r = log.wait_durable(seq);
        self.log_us.set(self.log_us.get() + t.elapsed().as_micros() as u64);
        r
    }

    /// Runs the op body, then [`OpCtx::finish`]es the measurement from its
    /// outcome — the standard wrapper for entry points that return
    /// `Result`.
    fn finish_with<T>(&self, body: impl FnOnce() -> Result<T>) -> Result<T> {
        let r = body();
        self.finish(r.is_ok());
        r
    }

    /// Completes the measurement: one op counted (an error, if `!ok`),
    /// and the total split into lock-wait + log + work.
    fn finish(&self, ok: bool) {
        let total = self.start.elapsed().as_micros() as u64;
        let wait = self.lock_wait_us.get();
        let logged = self.log_us.get();
        self.stat.ops.inc();
        if !ok {
            self.stat.errors.inc();
        }
        self.stat.total.observe_us(total);
        self.stat.lock_wait.observe_us(wait);
        self.stat.log.observe_us(logged);
        self.stat.work.observe_us(total.saturating_sub(wait).saturating_sub(logged));
    }
}

/// What the single-shard delete fast path hands back: the staged edit-log
/// sequence, the blocks to drop from the block map, and the inode ids
/// whose heat entries must be forgotten.
type FastDelete = (u64, Vec<BlockId>, Vec<INodeId>);

/// The OctopusFS (primary) master.
///
/// Lock-order discipline (DESIGN.md §11): namespace shards in ascending
/// index → block shards (one at a time) → `cluster` → `leases` → `ledger`
/// → `mounts`; `heat`, the audit ring, and the series ring are leaves.
/// Never acquire a namespace shard while holding a block shard or the
/// cluster lock.
pub struct Master {
    /// Namespace stripes: directories mirrored everywhere, each file in
    /// the shard its path hashes to.
    shards: Vec<StatRwLock<Namespace>>,
    /// Block-map stripes, keyed by `block_id % shards`.
    blocks: Vec<StatRwLock<BlockMap>>,
    cluster: StatMutex<ClusterState>,
    leases: StatMutex<LeaseManager>,
    /// The sole quota authority: shard mirrors keep unlimited quotas (a
    /// per-shard limit would multiply by the shard count), and every
    /// charge/check goes through this ledger.
    ledger: StatMutex<QuotaLedger>,
    mounts: StatRwLock<MountTable>,
    log: GroupCommitLog,
    safe_mode: AtomicBool,
    clock_ms: AtomicU64,
    config: ClusterConfig,
    placement: Box<dyn PlacementPolicy>,
    retrieval: Box<dyn RetrievalPolicy>,
    block_ids: IdGenerator,
    gen_stamps: IdGenerator,
    metrics: MetricsRegistry,
    trace: TraceCollector,
    ops: MetaOpStats,
    // Telemetry state lives outside the shard locks on purpose: heat
    // queries and audit lookups must not contend with the namespace, and
    // `get_file_block_locations` records retrieval decisions while
    // holding only a read lock.
    heat: StatMutex<HeatTracker>,
    audit: AuditRing,
    series: SeriesRing,
}

impl Master {
    /// Creates a master from configuration with an in-memory edit log.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        Self::with_log(config, EditLog::in_memory())
    }

    /// Creates a master with the supplied edit log (file-backed for
    /// durability). Existing log contents are replayed into one merged
    /// namespace, then scattered across the configured shards.
    pub fn with_log(config: ClusterConfig, log: EditLog) -> Result<Self> {
        config.validate()?;
        let nshards = config.master_shards.max(1);

        // Replay the whole log into ONE merged namespace. The block
        // catalog keeps every allocated block (deleted files included)
        // so the id generator never re-issues an id, but the block map
        // is derived from the *merged namespace* afterwards — blocks of
        // deleted files must not survive replay.
        // One inode-id generator is shared by the replay namespace and
        // every shard mirror, so ids issued during replay, ids issued for
        // mirrored directories, and ids issued after boot never collide.
        let inode_ids = Arc::new(IdGenerator::new(1));
        let mut merged = Namespace::with_ids(Arc::clone(&inode_ids));
        let mut block_catalog: HashMap<BlockId, Block> = HashMap::new();
        let mut max_block = 0u64;
        for op in log.ops() {
            op.apply(&mut merged)?;
            if let EditOp::AddBlock { block, gen, len, .. } = op {
                block_catalog.insert(*block, Block { id: *block, gen: GenStamp(*gen), len: *len });
                max_block = max_block.max(block.0);
            }
        }

        // Scatter: every directory mirrors into every shard; each file
        // implants into the shard its path hashes to.
        let mut shard_ns: Vec<Namespace> =
            (0..nshards).map(|_| Namespace::with_ids(Arc::clone(&inode_ids))).collect();
        let mut ledger = QuotaLedger::new();
        for (path, quota) in merged.iter_dirs() {
            for ns in &mut shard_ns {
                ns.mkdir(&path, true)?;
            }
            ledger.register_dirs(&path);
            let (_, usage) = merged.quota_usage(&path)?;
            ledger.restore_entry(&path, quota, usage);
        }
        let mut shard_blocks: Vec<BlockMap> = (0..nshards).map(|_| BlockMap::new()).collect();
        for (id, path, meta) in merged.iter_files() {
            let meta = meta.clone();
            let s = shard_index(&path, nshards)?;
            for bid in &meta.blocks {
                let block = *block_catalog
                    .get(bid)
                    .ok_or_else(|| FsError::Internal(format!("block {bid} missing from log")))?;
                shard_blocks[bid.0 as usize % nshards].insert(block, id, Vec::new());
            }
            shard_ns[s].implant_file(&path, id, meta)?;
        }

        let block_ids = IdGenerator::new(1);
        block_ids.ensure_above(max_block);
        let placement = build_placement_policy(config.policy.placement, &config.policy, 0x0c70);
        let retrieval = build_retrieval_policy(config.policy.retrieval, 0x0c70);
        // A master that boots with pre-existing blocks (restart/failover)
        // starts in safe mode until block reports confirm the data (§2.1).
        let safe_mode = shard_blocks.iter().any(|b| !b.is_empty());
        let metrics = MetricsRegistry::new();
        // Pre-register the scrape-time drop counters so they are present
        // (at zero) in every snapshot, not only after the first wrap.
        metrics.counter("master_audit_dropped_total", Labels::NONE);
        metrics.counter("master_series_dropped_total", Labels::NONE);
        let ops = MetaOpStats::register(&metrics);
        let shards = shard_ns
            .into_iter()
            .enumerate()
            .map(|(i, ns)| {
                StatRwLock::instrumented(
                    ns,
                    LockStats::register_owned(&metrics, format!("master.shard{i}")),
                )
            })
            .collect();
        let blocks = shard_blocks
            .into_iter()
            .enumerate()
            .map(|(i, bm)| {
                StatRwLock::instrumented(
                    bm,
                    LockStats::register_owned(&metrics, format!("master.blocks{i}")),
                )
            })
            .collect();
        let cluster_stats = LockStats::register(&metrics, "master.cluster");
        let lease_stats = LockStats::register(&metrics, "master.leases");
        let ledger_stats = LockStats::register(&metrics, "master.ledger");
        let mount_stats = LockStats::register(&metrics, "master.mounts");
        let heat_stats = LockStats::register(&metrics, "master.heat");
        let audit_stats = LockStats::register(&metrics, "master.audit");
        let series_stats = LockStats::register(&metrics, "master.series");
        Ok(Self {
            shards,
            blocks,
            cluster: StatMutex::instrumented(ClusterState::new(&config), cluster_stats),
            leases: StatMutex::instrumented(
                LeaseManager::new(config.heartbeat_ms * LEASE_HEARTBEATS),
                lease_stats,
            ),
            ledger: StatMutex::instrumented(ledger, ledger_stats),
            mounts: StatRwLock::instrumented(MountTable::new(), mount_stats),
            log: GroupCommitLog::new(log),
            safe_mode: AtomicBool::new(safe_mode),
            clock_ms: AtomicU64::new(0),
            config,
            placement,
            retrieval,
            block_ids,
            gen_stamps: IdGenerator::new(1),
            metrics,
            trace: TraceCollector::new("master"),
            ops,
            heat: StatMutex::instrumented(
                HeatTracker::new(
                    octopus_common::heat::DEFAULT_HEAT_EPOCH_MS,
                    octopus_common::heat::DEFAULT_HEAT_ALPHA,
                ),
                heat_stats,
            ),
            audit: AuditRing::with_stats(
                octopus_common::audit::DEFAULT_AUDIT_CAPACITY,
                audit_stats,
            ),
            series: SeriesRing::with_stats(
                octopus_common::series::DEFAULT_SERIES_INTERVAL_MS,
                octopus_common::series::DEFAULT_SERIES_POINTS,
                series_stats,
            ),
        })
    }

    /// Opens a per-call measurement context for `op` (see [`OpCtx`]).
    fn op(&self, op: MetaOp) -> OpCtx<'_> {
        OpCtx {
            stat: &self.ops.0[op as usize],
            start: Instant::now(),
            lock_wait_us: Cell::new(0),
            log_us: Cell::new(0),
        }
    }

    /// Number of namespace/block shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a path hashes to (diagnostics and tests).
    pub fn shard_of(&self, path: &str) -> Result<usize> {
        shard_index(path, self.shards.len())
    }

    /// The block-map stripe of a block id.
    fn block_shard(&self, id: BlockId) -> &StatRwLock<BlockMap> {
        &self.blocks[id.0 as usize % self.blocks.len()]
    }

    /// Write-locks every namespace shard in ascending index order (the
    /// cross-shard lock discipline), folding waits into `ctx`.
    fn lock_all_ns_write<'a>(&'a self, ctx: &OpCtx<'_>) -> Vec<StatWriteGuard<'a, Namespace>> {
        self.shards.iter().map(|s| ctx.write(s)).collect()
    }

    /// Stamps externally accumulated drop totals (trace spans, audit and
    /// series ring evictions) into the registry. Called at `Metrics`
    /// scrape time: the rings evict without a metrics hook of their own.
    pub fn stamp_scrape_metrics(&self) {
        self.metrics
            .counter("trace_spans_dropped_total", Labels::NONE)
            .set_max(self.trace.dropped());
        self.metrics
            .counter("master_audit_dropped_total", Labels::NONE)
            .set_max(self.audit.dropped());
        self.metrics
            .counter("master_series_dropped_total", Labels::NONE)
            .set_max(self.series.dropped());
    }

    /// The master's metrics registry (`master_*` counters, gauges, and
    /// latency histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The master's trace collector (spans for RPCs dispatched onto this
    /// master, plus replication/scrub rounds driven from it).
    pub fn trace(&self) -> &TraceCollector {
        &self.trace
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Name of the active placement policy.
    pub fn placement_policy_name(&self) -> &'static str {
        self.placement.name()
    }

    /// Reserves the block-id space below `base` for other masters: this
    /// master will only issue ids above it. Federated deployments (§2.1)
    /// give each independent master a disjoint id range so block ids stay
    /// unique on the shared workers (the HDFS "block pool" concept).
    pub fn reserve_block_id_space(&self, base: u64) {
        self.block_ids.ensure_above(base);
    }

    /// The master's logical clock (max over all observed timestamps).
    fn now_ms(&self) -> u64 {
        self.clock_ms.load(Ordering::Acquire)
    }

    /// Advances the logical clock (never backwards).
    fn advance_clock(&self, now_ms: u64) {
        self.clock_ms.fetch_max(now_ms, Ordering::AcqRel);
    }

    // -- Worker-facing API -------------------------------------------------

    /// Registers a worker.
    pub fn register_worker(&self, worker: WorkerId, rack: RackId, net_thru: f64, now_ms: u64) {
        self.cluster.lock().register(worker, rack, net_thru, now_ms);
    }

    /// Processes a heartbeat.
    pub fn heartbeat(
        &self,
        worker: WorkerId,
        media: Vec<MediaStats>,
        nr_conn: u32,
        now_ms: u64,
    ) -> Result<()> {
        let ctx = self.op(MetaOp::Heartbeat);
        ctx.finish_with(|| {
            self.advance_clock(now_ms);
            let mut c = ctx.lock(&self.cluster);
            let out = c.heartbeat(worker, media, nr_conn, now_ms);
            self.metrics.inc("master_heartbeats_total", Labels::worker(worker));
            self.update_liveness_gauge(&c);
            out
        })
    }

    /// [`Master::heartbeat`] carrying a worker's drained access-heat epoch:
    /// per-block read/write touch counts are resolved to their owning files
    /// and folded into the per-file EWMA heat tracker. Touches for blocks
    /// the master no longer knows (deleted files, stale workers) are
    /// silently dropped.
    pub fn heartbeat_with_heat(
        &self,
        worker: WorkerId,
        media: Vec<MediaStats>,
        nr_conn: u32,
        now_ms: u64,
        touches: &[BlockTouches],
    ) -> Result<()> {
        self.heartbeat(worker, media, nr_conn, now_ms)?;
        self.observe_touches(touches, now_ms);
        Ok(())
    }

    /// Folds per-block touch counts into per-file heat (see
    /// [`Master::heartbeat_with_heat`]). Public so replaying harnesses can
    /// inject synthetic access patterns.
    pub fn observe_touches(&self, touches: &[BlockTouches], now_ms: u64) {
        if touches.is_empty() {
            return;
        }
        let n = self.blocks.len();
        let mut by_shard: Vec<Vec<&BlockTouches>> = vec![Vec::new(); n];
        for t in touches {
            by_shard[t.block.0 as usize % n].push(t);
        }
        let mut per_file: HashMap<INodeId, (u64, u64)> = HashMap::new();
        for (s, ts) in by_shard.into_iter().enumerate() {
            if ts.is_empty() {
                continue;
            }
            let g = self.blocks[s].read();
            for t in ts {
                if let Some(info) = g.get(t.block) {
                    let e = per_file.entry(info.file).or_insert((0, 0));
                    e.0 += t.reads as u64;
                    e.1 += t.writes as u64;
                }
            }
        }
        let mut heat = self.heat.lock();
        for (file, (reads, writes)) in per_file {
            heat.observe(file, reads, writes, now_ms);
        }
    }

    fn update_liveness_gauge(&self, c: &ClusterState) {
        let live = c.workers().filter(|w| w.live).count() as i64;
        self.metrics.gauge("master_live_workers", Labels::NONE).set(live);
    }

    /// Processes a full block report from a worker: confirms reported
    /// replicas, drops replicas the master believed were on this worker
    /// but were not reported, and returns block ids the worker should
    /// delete (blocks unknown to the namespace). The sweep walks block
    /// shards one at a time — no global barrier.
    pub fn block_report(
        &self,
        worker: WorkerId,
        reported: &[(Block, octopus_common::MediaId)],
    ) -> Result<Vec<BlockId>> {
        let ctx = self.op(MetaOp::BlockReport);
        let out = self.block_report_inner(&ctx, worker, reported);
        ctx.finish(out.is_ok());
        out
    }

    fn block_report_inner(
        &self,
        ctx: &OpCtx<'_>,
        worker: WorkerId,
        reported: &[(Block, octopus_common::MediaId)],
    ) -> Result<Vec<BlockId>> {
        let n = self.blocks.len();
        // Resolve reported media up front under one cluster lock, so the
        // per-shard sweep never nests cluster inside a block-shard lock.
        let locate: HashMap<MediaId, (WorkerId, TierId)> = {
            let c = ctx.lock(&self.cluster);
            reported.iter().filter_map(|(_, m)| c.locate_media(*m).map(|wt| (*m, wt))).collect()
        };
        let reported_media: Vec<_> = reported.iter().map(|(b, m)| (b.id, *m)).collect();
        let mut by_shard: Vec<Vec<&(Block, MediaId)>> = vec![Vec::new(); n];
        for r in reported {
            by_shard[r.0.id.0 as usize % n].push(r);
        }
        let mut invalidate = Vec::new();
        for (s, rs) in by_shard.into_iter().enumerate() {
            let mut g = ctx.write(&self.blocks[s]);
            // Confirm (or reject) this stripe's reported replicas.
            for (block, media) in rs {
                let Some(&(w, tier)) = locate.get(media) else {
                    continue;
                };
                debug_assert_eq!(w, worker);
                let loc = Location { worker, media: *media, tier };
                if g.get(block.id).is_some() {
                    g.confirm(block.id, loc)?;
                } else {
                    invalidate.push(block.id);
                }
            }
            // Drop stale locations on this worker that were not reported
            // (every stripe is swept, even when the report is empty).
            let ids = g.block_ids();
            for id in ids {
                let stale: Vec<Location> = g
                    .get(id)
                    .map(|info| {
                        info.locations
                            .iter()
                            .filter(|l| l.worker == worker)
                            .filter(|l| !reported_media.contains(&(id, l.media)))
                            .copied()
                            .collect()
                    })
                    .unwrap_or_default();
                for l in stale {
                    g.remove_replica(id, l.media);
                }
            }
        }
        // Safe mode exits once enough blocks have a confirmed replica.
        if self.safe_mode.load(Ordering::Acquire) {
            let mut total = 0usize;
            let mut available = 0usize;
            for b in &self.blocks {
                let g = ctx.read(b);
                total += g.len();
                available += g.iter().filter(|(_, i)| !i.locations.is_empty()).count();
            }
            if total == 0 || available as f64 / total as f64 >= SAFE_MODE_THRESHOLD {
                self.safe_mode.store(false, Ordering::Release);
            }
        }
        Ok(invalidate)
    }

    /// Advances the master's failure detector; newly dead workers lose all
    /// their replica locations (their blocks become re-replication
    /// candidates on the next scan).
    pub fn tick(&self, now_ms: u64) -> Vec<WorkerId> {
        self.advance_clock(now_ms);
        // Collect the dead under the cluster lock, then sweep block shards
        // with the lock released (cluster never nests over block shards).
        let dead = self.cluster.lock().tick(now_ms);
        if !dead.is_empty() {
            for b in &self.blocks {
                let mut g = b.write();
                for &w in &dead {
                    g.remove_worker_replicas(w);
                }
            }
        }
        // Lease recovery: finalize files whose writers disappeared, so
        // their blocks become readable and re-replicable. Expired paths
        // are collected first; each recovery re-verifies under its shard
        // lock + the lease lock (a client may have renewed in between).
        let now = self.now_ms();
        let expired = self.leases.lock().expired(now);
        let mut recovered = false;
        for path in expired {
            let Ok(s) = shard_index(&path, self.shards.len()) else { continue };
            let mut ns = self.shards[s].write();
            let mut lm = self.leases.lock();
            if !lm.expired(now).iter().any(|p| p == &path) {
                continue; // renewed since we looked
            }
            if let Ok(file) = ns.resolve(&path) {
                if ns.file_meta(file).map(|m| !m.complete).unwrap_or(false) {
                    let _ = ns.finalize_file(file);
                    self.log.stage(EditOp::CloseFile { path: path.clone() });
                    recovered = true;
                }
            }
            lm.release(&path);
        }
        if recovered {
            let _ = self.log.flush();
        }
        // Heat hygiene: drop files whose EWMA has decayed to nothing, so
        // the tracker is bounded by *recently active* files rather than
        // every file ever touched.
        let gc_dropped = self.heat.lock().gc(now);
        if gc_dropped > 0 {
            self.metrics.add("master_heat_gc_dropped_total", Labels::NONE, gc_dropped as u64);
        }
        {
            let c = self.cluster.lock();
            self.update_liveness_gauge(&c);
        }
        let sample_at = self.now_ms();
        self.series.maybe_sample(sample_at, || {
            let files: usize = self.shards.iter().map(|s| s.read().counts().0).sum();
            let blocks: usize = self.blocks.iter().map(|b| b.read().len()).sum();
            let (live, scheduled, reports) = {
                let c = self.cluster.lock();
                (
                    c.workers().filter(|w| w.live).count() as i64,
                    c.total_scheduled_bytes(),
                    c.tier_reports(&self.config.tiers),
                )
            };
            let mut values: Vec<(String, i64)> = vec![
                ("live_workers".to_string(), live),
                ("files".to_string(), files as i64),
                ("blocks".to_string(), blocks as i64),
                ("scheduled_bytes".to_string(), scheduled as i64),
            ];
            for r in reports {
                let used = r.stats.capacity.saturating_sub(r.stats.remaining);
                values.push((format!("tier{}_used_bytes", r.stats.tier.0), used as i64));
                values.push((
                    format!("tier{}_capacity_bytes", r.stats.tier.0),
                    r.stats.capacity as i64,
                ));
            }
            // Cumulative lock pressure, so operators can see contention
            // *trends* (the histograms only give totals). The pre-shard
            // series key `lock_inner_*` is kept for continuity: it now
            // aggregates every namespace shard.
            let mut wait = 0u64;
            let mut hold = 0u64;
            let mut contended = 0u64;
            for s in &self.shards {
                if let Some(st) = s.stats() {
                    wait += st.wait_total_us();
                    hold += st.hold_total_us();
                    contended += st.contended_total();
                }
            }
            values.push(("lock_inner_wait_us".to_string(), wait as i64));
            values.push(("lock_inner_hold_us".to_string(), hold as i64));
            values.push(("lock_inner_contended".to_string(), contended as i64));
            if let Some(s) = self.heat.stats() {
                values.push(("lock_heat_wait_us".to_string(), s.wait_total_us() as i64));
                values.push(("lock_heat_hold_us".to_string(), s.hold_total_us() as i64));
                values.push(("lock_heat_contended".to_string(), s.contended_total() as i64));
            }
            values
        });
        dead
    }

    /// Administratively kills a worker (tests, decommissioning).
    pub fn kill_worker(&self, worker: WorkerId) {
        self.cluster.lock().mark_dead(worker);
        for b in &self.blocks {
            b.write().remove_worker_replicas(worker);
        }
    }

    /// A worker's scrubber found a corrupt replica (§5: "block
    /// corruption"): drop the location so the next replication scan
    /// re-replicates from a healthy copy.
    pub fn report_corrupt(&self, block: BlockId, location: Location) {
        self.block_shard(block).write().remove_replica(block, location.media);
        self.metrics.inc("master_scrub_corrupt_total", Labels::worker(location.worker));
    }

    /// Begins draining a worker: it stops receiving new replicas and its
    /// existing replicas are re-replicated elsewhere by the replication
    /// monitor, while it keeps serving reads (as an HDFS decommission).
    pub fn start_decommission(&self, worker: WorkerId) {
        self.cluster.lock().start_decommission(worker);
    }

    /// Whether every block with a replica on the draining worker is fully
    /// replicated elsewhere (safe to stop the worker).
    pub fn decommission_complete(&self, worker: WorkerId) -> bool {
        // Prefetch every file's replication vector from the namespace
        // shards first: block shards must never nest inside a namespace
        // lock (or vice versa), so the scan below runs against this map.
        let mut rv_of: HashMap<INodeId, ReplicationVector> = HashMap::new();
        for s in &self.shards {
            let g = s.read();
            for (id, _, meta) in g.iter_files() {
                rv_of.insert(id, meta.rv);
            }
        }
        let draining: std::collections::HashSet<WorkerId> = {
            let c = self.cluster.lock();
            if !c.is_decommissioning(worker) {
                return false;
            }
            c.workers().filter(|w| c.is_decommissioning(w.worker)).map(|w| w.worker).collect()
        };
        for b in &self.blocks {
            let g = b.read();
            for (_, info) in g.iter() {
                if !info.locations.iter().any(|l| l.worker == worker) {
                    continue;
                }
                let Some(&rv) = rv_of.get(&info.file) else { continue };
                let counted: Vec<Location> = info
                    .all_locations()
                    .into_iter()
                    .filter(|l| !draining.contains(&l.worker))
                    .collect();
                if !replication_state(rv, &counted).is_satisfied() {
                    return false;
                }
            }
        }
        true
    }

    /// Retires a drained worker: removes it from the cluster entirely.
    pub fn finalize_decommission(&self, worker: WorkerId) {
        {
            let mut c = self.cluster.lock();
            c.clear_decommission(worker);
            c.mark_dead(worker);
        }
        for b in &self.blocks {
            b.write().remove_worker_replicas(worker);
        }
    }

    // -- Namespace API (Table 1 + standard operations) ----------------------

    fn check_writable(&self) -> Result<()> {
        if self.safe_mode.load(Ordering::Acquire) {
            return Err(FsError::NotReady("master is in safe mode awaiting block reports".into()));
        }
        Ok(())
    }

    /// Whether the master is in safe mode (read-only, §2.1 restart path).
    pub fn in_safe_mode(&self) -> bool {
        self.safe_mode.load(Ordering::Acquire)
    }

    /// Administratively leaves safe mode.
    pub fn leave_safe_mode(&self) {
        self.safe_mode.store(false, Ordering::Release);
    }

    /// Creates a directory (and parents). Directories are mirrored into
    /// every namespace shard, so the op takes all shard locks (ascending).
    pub fn mkdir(&self, path: &str) -> Result<()> {
        let ctx = self.op(MetaOp::Mkdir);
        ctx.finish_with(|| {
            self.check_writable()?;
            let comps = parse_path(path)?;
            let mut guards = self.lock_all_ns_write(&ctx);
            // A file may shadow a prefix of the new path — but it lives
            // only in its hash shard, and the other mirrors would happily
            // create a directory over it. Check each prefix against its
            // authoritative shard before mutating anything.
            let mut prefix = String::new();
            for (k, c) in comps.iter().enumerate() {
                prefix.push('/');
                prefix.push_str(c);
                let s = shard_index(&prefix, guards.len())?;
                if let Ok(id) = guards[s].resolve(&prefix) {
                    if guards[s].file_meta(id).is_ok() {
                        return Err(if k == comps.len() - 1 {
                            FsError::AlreadyExists(prefix.clone())
                        } else {
                            FsError::NotADirectory(prefix.clone())
                        });
                    }
                }
            }
            for g in guards.iter_mut() {
                g.mkdir(path, true)?;
            }
            self.ledger.lock().register_dirs(&normalize(path)?);
            let seq = self.log.stage(EditOp::Mkdir { path: path.to_string() });
            drop(guards);
            ctx.wait_durable(&self.log, seq)
        })
    }

    /// Creates a file open for writing. `block_size = None` uses the
    /// cluster default. The replication vector is validated against the
    /// configured tiers and the maximum replication.
    pub fn create_file(
        &self,
        path: &str,
        rv: ReplicationVector,
        block_size: Option<u64>,
    ) -> Result<FileStatus> {
        self.create_file_as(path, rv, block_size, ClientId::SYSTEM)
    }

    /// [`Master::create_file`] on behalf of a specific client, which takes
    /// the file's write lease. Touches exactly one namespace shard.
    pub fn create_file_as(
        &self,
        path: &str,
        rv: ReplicationVector,
        block_size: Option<u64>,
        holder: ClientId,
    ) -> Result<FileStatus> {
        let ctx = self.op(MetaOp::Create);
        ctx.finish_with(|| {
            rv.validate(self.config.tiers.len(), self.config.max_replication)?;
            if rv.total() == 0 {
                return Err(FsError::InvalidReplicationVector(
                    "a file needs at least one replica".into(),
                ));
            }
            self.check_writable()?;
            let bs = block_size.unwrap_or(self.config.block_size);
            let npath = normalize(path)?;
            let s = shard_index(&npath, self.shards.len())?;
            let mut ns = ctx.write(&self.shards[s]);
            let now = self.now_ms();
            ctx.lock(&self.leases).acquire(&npath, holder, now)?;
            if let Err(e) = ns.create_file(path, rv, bs) {
                self.leases.lock().release(&npath);
                return Err(e);
            }
            let seq =
                self.log.stage(EditOp::CreateFile { path: path.to_string(), rv, block_size: bs });
            let st = ns.status(path)?;
            drop(ns);
            ctx.wait_durable(&self.log, seq)?;
            Ok(st)
        })
    }

    /// Allocates the next block of an open file: runs the placement policy
    /// and returns the block plus the pipeline locations, first-to-write
    /// first (§3.1).
    pub fn add_block(
        &self,
        path: &str,
        len: u64,
        client: ClientLocation,
    ) -> Result<(Block, Vec<Location>)> {
        self.add_block_as(path, len, client, ClientId::SYSTEM)
    }

    /// [`Master::add_block`] on behalf of a specific client; the client
    /// must hold (or be granted) the file's lease, which this renews.
    pub fn add_block_as(
        &self,
        path: &str,
        len: u64,
        client: ClientLocation,
        holder: ClientId,
    ) -> Result<(Block, Vec<Location>)> {
        self.add_block_excluding(path, len, client, holder, &[])
    }

    /// [`Master::add_block_as`] excluding specific workers from placement
    /// — the client-side pipeline recovery of §3.1: after a stage failure
    /// the client abandons the block and re-requests placement without
    /// the workers its failed attempts already hit.
    pub fn add_block_excluding(
        &self,
        path: &str,
        len: u64,
        client: ClientLocation,
        holder: ClientId,
        excluded: &[WorkerId],
    ) -> Result<(Block, Vec<Location>)> {
        let ctx = self.op(MetaOp::AddBlock);
        let r = self.add_block_timed(&ctx, path, len, client, holder, excluded);
        ctx.finish(r.is_ok());
        r
    }

    fn add_block_timed(
        &self,
        ctx: &OpCtx<'_>,
        path: &str,
        len: u64,
        client: ClientLocation,
        holder: ClientId,
        excluded: &[WorkerId],
    ) -> Result<(Block, Vec<Location>)> {
        self.check_writable()?;
        let npath = normalize(path)?;
        let mut ns = ctx.write(&self.shards[shard_index(&npath, self.shards.len())?]);
        let now = self.now_ms();
        ctx.lock(&self.leases).check(&npath, holder, now)?;
        let file = ns.resolve(path)?;
        let meta = ns.file_meta(file)?;
        if meta.complete {
            return Err(FsError::InvalidArgument(format!("{path} is not open for writing")));
        }
        if len == 0 || len > meta.block_size {
            return Err(FsError::InvalidArgument(format!(
                "block length {len} not in (0, {}]",
                meta.block_size
            )));
        }
        let rv = meta.rv;
        let mut req = PlacementRequest::from_vector(rv, len, client);
        req.excluded_workers = excluded.to_vec();
        let snap = ctx.lock(&self.cluster).snapshot();
        let (media, rounds) = self.placement.place_with_audit(&snap, &req)?;
        if media.len() < req.tier_pins.len() {
            // Partial placement is tolerated (the replication monitor will
            // top the block up later) but at least one replica must exist.
            if media.is_empty() {
                return Err(FsError::PlacementFailed(format!(
                    "no media available for block of {path}"
                )));
            }
        }
        // Resolve + reserve under one cluster lock, so a concurrent
        // heartbeat cannot slip between the lookup and the reservation.
        let locations: Vec<Location> = {
            let mut c = ctx.lock(&self.cluster);
            let locs: Vec<Location> = media
                .iter()
                .map(|&m| {
                    let (worker, tier) =
                        c.locate_media(m).ok_or_else(|| FsError::UnknownMedia(m.to_string()))?;
                    Ok(Location { worker, media: m, tier })
                })
                .collect::<Result<_>>()?;
            for l in &locs {
                c.schedule_write(l.media, len);
            }
            locs
        };
        let block = Block {
            id: BlockId(self.block_ids.next()),
            gen: GenStamp(self.gen_stamps.next()),
            len,
        };
        // Quota check through the ledger (the shard mirrors carry no
        // limits); cancel the reservations if it trips.
        let charge = Namespace::charge_of(rv, len);
        if let Err(e) = self.ledger.lock().charge(&npath, &charge) {
            let mut c = self.cluster.lock();
            for l in &locations {
                c.cancel_write(l.media, len);
            }
            return Err(e);
        }
        if let Err(e) = ns.add_block(file, block.id, len) {
            self.ledger.lock().uncharge(&npath, &charge);
            let mut c = self.cluster.lock();
            for l in &locations {
                c.cancel_write(l.media, len);
            }
            return Err(e);
        }
        self.block_shard(block.id).write().insert(block, file, locations.clone());
        let seq = self.log.stage(EditOp::AddBlock {
            path: path.to_string(),
            block: block.id,
            gen: block.gen.0,
            len,
        });
        drop(ns);
        ctx.wait_durable(&self.log, seq)?;
        self.audit.push(DecisionEvent {
            seq: 0,
            when_ms: now,
            kind: DecisionKind::Placement,
            block: block.id,
            file,
            policy: self.placement.name().to_string(),
            chosen: locations.clone(),
            rounds,
        });
        Ok((block, locations))
    }

    /// Acknowledges that a pipeline stage stored its replica.
    pub fn commit_replica(&self, block: Block, loc: Location) -> Result<()> {
        let ctx = self.op(MetaOp::CommitReplica);
        ctx.finish_with(|| {
            ctx.write(self.block_shard(block.id)).confirm(block.id, loc)?;
            ctx.lock(&self.cluster).complete_write(loc.media, block.len);
            Ok(())
        })
    }

    /// Records that a scheduled replica will not be written (pipeline
    /// failure). Refuses to demote a location that already committed: a
    /// forwarding stage that loses its connection *after* the tail stored
    /// and committed still sends an abort for it, and honoring that late
    /// abort would strip a live replica from the block map. Only a
    /// still-pending reservation is cleared, and its scheduled-write
    /// capacity is returned (cancelled, not consumed — no bytes landed).
    pub fn abort_replica(&self, block: Block, loc: Location) {
        let ctx = self.op(MetaOp::AbortReplica);
        let mut g = ctx.write(self.block_shard(block.id));
        if g.get(block.id).is_some_and(|info| info.locations.contains(&loc)) {
            ctx.finish(true);
            return;
        }
        let cancelled = g.abandon_pending(block.id, &loc);
        drop(g);
        if cancelled {
            ctx.lock(&self.cluster).cancel_write(loc.media, block.len);
        }
        ctx.finish(true);
    }

    /// Re-records a replica the replication monitor failed to delete: the
    /// scan already dropped it from the block map, but the `DeleteBlock`
    /// RPC never executed, so the bytes still exist on the worker. Putting
    /// the location back keeps the block visibly over-replicated and the
    /// next scan re-issues the delete (§5). No capacity adjustment: the
    /// replica never left the medium. A no-op if the block was deleted in
    /// the meantime (the worker's next block report purges the replica).
    pub fn reinstate_replica(&self, block: Block, loc: Location) {
        let _ = self.block_shard(block.id).write().confirm(block.id, loc);
    }

    /// Abandons an allocated block whose pipeline never stored a replica:
    /// reverses the namespace append (refunding quota), releases every
    /// pending write reservation, and drops the block from the block map.
    /// Replicas that *did* commit before the failure become unknown blocks
    /// and are invalidated through their owners' next block reports.
    pub fn abandon_block_as(&self, path: &str, block: Block, holder: ClientId) -> Result<()> {
        let ctx = self.op(MetaOp::AbandonBlock);
        ctx.finish_with(|| {
            self.check_writable()?;
            let npath = normalize(path)?;
            let mut ns = ctx.write(&self.shards[shard_index(&npath, self.shards.len())?]);
            let now = self.now_ms();
            ctx.lock(&self.leases).check(&npath, holder, now)?;
            let file = ns.resolve(path)?;
            let rv = ns.file_meta(file)?.rv;
            ns.remove_last_block(file, block.id, block.len)?;
            self.ledger.lock().uncharge(&npath, &Namespace::charge_of(rv, block.len));
            if let Some(info) = self.block_shard(block.id).write().remove_block(block.id) {
                let mut c = self.cluster.lock();
                for loc in info.pending {
                    c.cancel_write(loc.media, block.len);
                }
            }
            let seq = self.log.stage(EditOp::AbandonBlock {
                path: path.to_string(),
                block: block.id,
                len: block.len,
            });
            drop(ns);
            ctx.wait_durable(&self.log, seq)
        })
    }

    /// Re-places an already-allocated block onto a fresh pipeline, keeping
    /// its file slot.
    ///
    /// # Block-ordering invariant
    ///
    /// A file's byte layout is exactly the order of `AddBlock` calls: the
    /// namespace appends each block to `meta.blocks`, and
    /// [`Master::get_file_block_locations`] derives offsets by walking that
    /// list in order. Parallel clients therefore *serialize* `AddBlock`
    /// (issuing them in offset order) while parallelizing the transfers,
    /// and a failed transfer must not abandon a mid-file block —
    /// `Namespace::remove_last_block` deliberately rejects that, because
    /// re-adding would move the block to the end and scramble the file.
    /// `ReassignBlock` is the recovery path that preserves the slot: the
    /// block keeps its id, generation, length, and position in
    /// `meta.blocks`; only its replica placement is replaced.
    ///
    /// Replicas an earlier attempt already committed become surplus and
    /// are invalidated through their owners' block reports (the same
    /// convergence path abandoned blocks use). Placement failure leaves
    /// the old assignment untouched, so the caller can retry or give up
    /// without losing state.
    pub fn reassign_block_as(
        &self,
        path: &str,
        block: Block,
        client: ClientLocation,
        holder: ClientId,
        excluded: &[WorkerId],
    ) -> Result<Vec<Location>> {
        let ctx = self.op(MetaOp::ReassignBlock);
        let r = self.reassign_block_timed(&ctx, path, block, client, holder, excluded);
        ctx.finish(r.is_ok());
        r
    }

    fn reassign_block_timed(
        &self,
        ctx: &OpCtx<'_>,
        path: &str,
        block: Block,
        client: ClientLocation,
        holder: ClientId,
        excluded: &[WorkerId],
    ) -> Result<Vec<Location>> {
        self.check_writable()?;
        let npath = normalize(path)?;
        // The shard write lock pins the file meta (no concurrent abandon
        // or complete) even though the namespace itself does not change.
        let ns = ctx.write(&self.shards[shard_index(&npath, self.shards.len())?]);
        let now = self.now_ms();
        ctx.lock(&self.leases).check(&npath, holder, now)?;
        let file = ns.resolve(path)?;
        let meta = ns.file_meta(file)?;
        if meta.complete {
            return Err(FsError::InvalidArgument(format!("{path} is not open for writing")));
        }
        if !meta.blocks.contains(&block.id) {
            return Err(FsError::InvalidArgument(format!(
                "block {} is not part of {path}",
                block.id
            )));
        }
        let rv = meta.rv;
        let mut req = PlacementRequest::from_vector(rv, block.len, client);
        req.excluded_workers = excluded.to_vec();
        let snap = ctx.lock(&self.cluster).snapshot();
        // Place first: a placement failure must leave the old assignment
        // intact (no edit-log entry either way — replica locations are
        // never logged, exactly as in `add_block_excluding`).
        let (media, rounds) = self.placement.place_with_audit(&snap, &req)?;
        if media.is_empty() {
            return Err(FsError::PlacementFailed(format!(
                "no media available for block of {path}"
            )));
        }
        let locations: Vec<Location> = {
            let c = ctx.lock(&self.cluster);
            media
                .iter()
                .map(|&m| {
                    let (worker, tier) =
                        c.locate_media(m).ok_or_else(|| FsError::UnknownMedia(m.to_string()))?;
                    Ok(Location { worker, media: m, tier })
                })
                .collect::<Result<_>>()?
        };
        {
            let mut bs = ctx.write(self.block_shard(block.id));
            if let Some(info) = bs.remove_block(block.id) {
                // Refund write reservations of the failed pipeline;
                // committed replicas become unknown blocks, purged via
                // block reports.
                let mut c = self.cluster.lock();
                for loc in info.pending {
                    c.cancel_write(loc.media, block.len);
                }
            }
            {
                let mut c = self.cluster.lock();
                for l in &locations {
                    c.schedule_write(l.media, block.len);
                }
            }
            bs.insert(block, file, locations.clone());
        }
        self.audit.push(DecisionEvent {
            seq: 0,
            when_ms: now,
            kind: DecisionKind::Reassign,
            block: block.id,
            file,
            policy: self.placement.name().to_string(),
            chosen: locations.clone(),
            rounds,
        });
        Ok(locations)
    }

    /// Reopens a complete file for append (new blocks only; the existing
    /// last block is not reopened — appends start a fresh block). The
    /// caller takes the file's write lease.
    pub fn append_file_as(&self, path: &str, holder: ClientId) -> Result<FileStatus> {
        let ctx = self.op(MetaOp::Append);
        ctx.finish_with(|| {
            self.check_writable()?;
            let npath = normalize(path)?;
            let mut ns = ctx.write(&self.shards[shard_index(&npath, self.shards.len())?]);
            let now = self.now_ms();
            ctx.lock(&self.leases).acquire(&npath, holder, now)?;
            let file = match ns.resolve(path) {
                Ok(f) => f,
                Err(e) => {
                    self.leases.lock().release(&npath);
                    return Err(e);
                }
            };
            if let Err(e) = ns.reopen_file(file) {
                self.leases.lock().release(&npath);
                return Err(e);
            }
            let seq = self.log.stage(EditOp::AppendFile { path: path.to_string() });
            let st = ns.status(path)?;
            drop(ns);
            ctx.wait_durable(&self.log, seq)?;
            Ok(st)
        })
    }

    /// Closes a file.
    pub fn complete_file(&self, path: &str) -> Result<()> {
        self.complete_file_as(path, ClientId::SYSTEM)
    }

    /// [`Master::complete_file`] on behalf of a specific client; releases
    /// the lease.
    pub fn complete_file_as(&self, path: &str, holder: ClientId) -> Result<()> {
        let ctx = self.op(MetaOp::Complete);
        ctx.finish_with(|| {
            self.check_writable()?;
            let npath = normalize(path)?;
            let mut ns = ctx.write(&self.shards[shard_index(&npath, self.shards.len())?]);
            let now = self.now_ms();
            ctx.lock(&self.leases).check(&npath, holder, now)?;
            let file = ns.resolve(path)?;
            ns.finalize_file(file)?;
            self.leases.lock().release(&npath);
            let seq = self.log.stage(EditOp::CloseFile { path: path.to_string() });
            drop(ns);
            ctx.wait_durable(&self.log, seq)
        })
    }

    /// `getFileBlockLocations` (Table 1): blocks overlapping the byte range
    /// with replica locations ordered by the retrieval policy (§4).
    pub fn get_file_block_locations(
        &self,
        path: &str,
        start: u64,
        len: u64,
        client: ClientLocation,
    ) -> Result<Vec<LocatedBlock>> {
        let ctx = self.op(MetaOp::Locations);
        let r = self.block_locations_timed(&ctx, path, start, len, client);
        ctx.finish(r.is_ok());
        r
    }

    fn block_locations_timed(
        &self,
        ctx: &OpCtx<'_>,
        path: &str,
        start: u64,
        len: u64,
        client: ClientLocation,
    ) -> Result<Vec<LocatedBlock>> {
        let npath = normalize(path)?;
        let (file, meta) = {
            let g = ctx.read(&self.shards[shard_index(&npath, self.shards.len())?]);
            let file = g.resolve(path)?;
            (file, g.file_meta(file)?.clone())
        };
        let snap = ctx.lock(&self.cluster).snapshot();
        let now = self.now_ms();
        let mut out = Vec::new();
        let mut offset = 0u64;
        for bid in &meta.blocks {
            let info =
                ctx.read(self.block_shard(*bid)).get(*bid).cloned().ok_or_else(|| {
                    FsError::Internal(format!("file block {bid} missing from map"))
                })?;
            let (ordered, candidates) =
                self.retrieval.order_with_audit(&snap, client, &info.locations);
            let lb = LocatedBlock { block: info.block, offset, locations: ordered };
            offset = lb.end();
            if lb.overlaps(start, len) {
                // Retrieval decisions are audited only for blocks actually
                // handed to the client (the requested range). The ring has
                // its own lock, so recording is fine without any guard.
                self.audit.push(DecisionEvent {
                    seq: 0,
                    when_ms: now,
                    kind: DecisionKind::Retrieval,
                    block: info.block.id,
                    file,
                    policy: self.retrieval.name().to_string(),
                    chosen: lb.locations.clone(),
                    rounds: vec![DecisionRound {
                        replica_index: 0,
                        tier_pin: None,
                        chosen_media: lb.locations.first().map(|l| l.media),
                        candidates,
                    }],
                });
                out.push(lb);
            }
        }
        Ok(out)
    }

    /// `setReplication` (Table 1): validates and records the new vector.
    /// The actual data movement is asynchronous — the next replication
    /// scan schedules the copies/deletions (§5).
    pub fn set_replication(&self, path: &str, rv: ReplicationVector) -> Result<ReplicationVector> {
        rv.validate(self.config.tiers.len(), self.config.max_replication)?;
        if rv.total() == 0 {
            return Err(FsError::InvalidReplicationVector(
                "use delete() to drop a file entirely".into(),
            ));
        }
        let ctx = self.op(MetaOp::SetReplication);
        ctx.finish_with(|| {
            self.check_writable()?;
            let npath = normalize(path)?;
            let mut ns = ctx.write(&self.shards[shard_index(&npath, self.shards.len())?]);
            let file = ns.resolve(path)?;
            let meta = ns.file_meta(file)?;
            let (old, flen) = (meta.rv, meta.len);
            let recharged = flen > 0 && rv != old;
            if recharged {
                self.ledger.lock().recharge(
                    &npath,
                    &Namespace::charge_of(old, flen),
                    &Namespace::charge_of(rv, flen),
                )?;
            }
            if let Err(e) = ns.set_replication(path, rv) {
                if recharged {
                    self.ledger.lock().recharge(
                        &npath,
                        &Namespace::charge_of(rv, flen),
                        &Namespace::charge_of(old, flen),
                    )?;
                }
                return Err(e);
            }
            let seq = self.log.stage(EditOp::SetReplication { path: path.to_string(), rv });
            drop(ns);
            ctx.wait_durable(&self.log, seq)?;
            Ok(old)
        })
    }

    /// `getStorageTierReports` (Table 1).
    pub fn get_storage_tier_reports(&self) -> Vec<StorageTierReport> {
        self.cluster.lock().tier_reports(&self.config.tiers)
    }

    /// Status of a path. Paths under a mount point resolve against the
    /// external catalog (§2.4, stand-alone mode). A single-shard lookup:
    /// the path's hash shard sees both the directory mirror and the file
    /// (if any), so it answers authoritatively.
    pub fn status(&self, path: &str) -> Result<FileStatus> {
        let ctx = self.op(MetaOp::Stat);
        ctx.finish_with(|| {
            {
                let m = ctx.read(&self.mounts);
                if let Some((cat, rel)) = m.resolve(path) {
                    let st = cat.status(&rel)?;
                    return Ok(FileStatus {
                        id: INodeId(0),
                        path: path.to_string(),
                        is_dir: st.is_dir,
                        len: st.len,
                        rv: ReplicationVector::EMPTY,
                        block_size: 0,
                        complete: true,
                    });
                }
            }
            let s = shard_index(path, self.shards.len())?;
            ctx.read(&self.shards[s]).status(path)
        })
    }

    /// Lists a directory (external catalogs included — §2.4). The home
    /// shard provides subdirectories and its files; every other shard
    /// contributes only the files striped into it.
    pub fn list(&self, path: &str) -> Result<Vec<DirEntry>> {
        let ctx = self.op(MetaOp::List);
        ctx.finish_with(|| {
            {
                let m = ctx.read(&self.mounts);
                if let Some((cat, rel)) = m.resolve(path) {
                    return cat.list(&rel);
                }
            }
            // One shard guard at a time, never all at once: holding every
            // read guard for the whole merge convoys writers behind the
            // first shard (writer-priority rwlocks then stall new readers
            // too). The price is snapshot atomicity across shards — a
            // listing is a valid mix of states during concurrent
            // mutations, like the other global scans (§ sharded master).
            let home = shard_index(path, self.shards.len())?;
            let mut entries = ctx.read(&self.shards[home]).list(path)?;
            for (i, shard) in self.shards.iter().enumerate() {
                if i == home {
                    continue;
                }
                let mut more = ctx.read(shard).list(path)?;
                more.retain(|e| !e.is_dir);
                entries.extend(more);
            }
            entries.sort_by(|a, b| a.name.cmp(&b.name));
            Ok(entries)
        })
    }

    /// Mounts an external catalog at `mount_point` (§2.4, stand-alone
    /// remote storage). The subtree is read-only through OctopusFS.
    pub fn mount_external(
        &self,
        mount_point: &str,
        catalog: Arc<dyn ExternalCatalog>,
    ) -> Result<()> {
        let npath = normalize(mount_point)?;
        let ns = self.shards[shard_index(&npath, self.shards.len())?].read();
        // The mount point must not shadow existing namespace entries; the
        // shard guard is held across the insert so a concurrent create
        // cannot slip in underneath (namespace → mounts lock order).
        if ns.resolve(mount_point).is_ok() {
            return Err(FsError::AlreadyExists(mount_point.to_string()));
        }
        self.mounts.write().add(mount_point, catalog)
    }

    /// Whether a path resolves into a mounted external catalog.
    pub fn is_external(&self, path: &str) -> bool {
        self.mounts.read().resolve(path).is_some()
    }

    /// Reads a whole file from a mounted external catalog.
    pub fn read_external(&self, path: &str) -> Result<Vec<u8>> {
        let g = self.mounts.read();
        let (cat, rel) = g
            .resolve(path)
            .ok_or_else(|| FsError::NotFound(format!("{path} is not under a mount")))?;
        cat.read(&rel)
    }

    /// Registered external mount points.
    pub fn mount_points(&self) -> Vec<String> {
        self.mounts.read().mount_points().into_iter().map(String::from).collect()
    }

    /// Renames a file or directory. The renamed subtree's heat is reset:
    /// the common write-then-rename-into-place pattern would otherwise
    /// carry a staging file's write heat onto the published path and
    /// wrongly promote it, so a renamed file starts cold and earns its
    /// temperature from post-rename accesses.
    ///
    /// A file rename locks at most the two shards involved (ascending
    /// index order — the cross-shard deadlock discipline); a directory
    /// rename locks every shard, since all mirrors must move together and
    /// striped files may need to migrate to their new hash shard.
    pub fn rename(&self, src: &str, dst: &str) -> Result<()> {
        let ctx = self.op(MetaOp::Rename);
        ctx.finish_with(|| {
            self.check_writable()?;
            let nsrc = normalize(src)?;
            let ndst = normalize(dst)?;
            let n = self.shards.len();
            let i = shard_index(&nsrc, n)?;
            let j = shard_index(&ndst, n)?;
            // Peek the source kind from its authoritative shard (the file,
            // if any, hashes there; the directory mirror is there too).
            let is_file = {
                let g = ctx.read(&self.shards[i]);
                let id = g.resolve(&nsrc)?;
                g.file_meta(id).is_ok()
            };
            let fast = if is_file {
                self.rename_file_fast(&ctx, src, dst, &nsrc, &ndst, i, j)?
            } else {
                None
            };
            let (seq, moved) = match fast {
                Some(x) => x,
                None => self.rename_slow(&ctx, src, dst, &nsrc, &ndst)?,
            };
            {
                let mut heat = self.heat.lock();
                for f in moved {
                    heat.forget(f);
                }
            }
            ctx.wait_durable(&self.log, seq)
        })
    }

    /// The two-shard file-rename fast path. Returns `Ok(None)` when the
    /// re-verification under the write locks finds the source is no longer
    /// a plain file (a racing op changed it) — the caller falls back to
    /// the all-shards slow path.
    #[allow(clippy::too_many_arguments)]
    fn rename_file_fast(
        &self,
        ctx: &OpCtx<'_>,
        src: &str,
        dst: &str,
        nsrc: &str,
        ndst: &str,
        i: usize,
        j: usize,
    ) -> Result<Option<(u64, Vec<INodeId>)>> {
        // Lock the lower-indexed shard first — every multi-shard op uses
        // this order, so two cross-shard renames cannot deadlock.
        let lo = i.min(j);
        let hi = i.max(j);
        let mut g_lo = ctx.write(&self.shards[lo]);
        let mut g_hi_opt = if hi != lo { Some(ctx.write(&self.shards[hi])) } else { None };
        {
            let (gi, gj): (&mut Namespace, &mut Namespace) = match g_hi_opt.as_mut() {
                None => {
                    // Same shard: re-verify, then let the namespace's own
                    // rename do the validation and the move.
                    let g = &mut *g_lo;
                    let id = g.resolve(nsrc)?;
                    if g.file_meta(id).is_err() {
                        return Ok(None);
                    }
                    let meta = g.file_meta(id)?.clone();
                    let charge = Namespace::charge_of(meta.rv, meta.len);
                    g.rename(nsrc, ndst)?;
                    if let Err(e) = self.ledger.lock().transfer_file(nsrc, ndst, &charge) {
                        g.rename(ndst, nsrc)?;
                        return Err(e);
                    }
                    self.leases.lock().rename(nsrc, ndst);
                    let seq = self
                        .log
                        .stage(EditOp::Rename { src: src.to_string(), dst: dst.to_string() });
                    return Ok(Some((seq, vec![id])));
                }
                Some(g_hi) => {
                    if i < j {
                        (&mut *g_lo, &mut **g_hi)
                    } else {
                        (&mut **g_hi, &mut *g_lo)
                    }
                }
            };
            // Cross-shard: re-verify the source, validate the destination
            // against its authoritative shard, then move the inode.
            let id = gi.resolve(nsrc)?;
            if gi.file_meta(id).is_err() {
                return Ok(None);
            }
            if gj.resolve(ndst).is_ok() {
                return Err(FsError::AlreadyExists(dst.to_string()));
            }
            let parent = parent_path(ndst);
            if !gj.status(&parent)?.is_dir {
                return Err(FsError::NotADirectory(parent));
            }
            let (fid, meta) = gi.extract_file(nsrc)?;
            let charge = Namespace::charge_of(meta.rv, meta.len);
            if let Err(e) = gj.implant_file(ndst, fid, meta.clone()) {
                gi.implant_file(nsrc, fid, meta)?;
                return Err(e);
            }
            if let Err(e) = self.ledger.lock().transfer_file(nsrc, ndst, &charge) {
                let (fid2, meta2) = gj.extract_file(ndst)?;
                gi.implant_file(nsrc, fid2, meta2)?;
                return Err(e);
            }
            self.leases.lock().rename(nsrc, ndst);
            let seq = self.log.stage(EditOp::Rename { src: src.to_string(), dst: dst.to_string() });
            Ok(Some((seq, vec![fid])))
        }
    }

    /// The all-shards rename path: directory renames (mirrors move
    /// together, striped files migrate to their new hash shards), and the
    /// fallback when the fast path lost its race.
    fn rename_slow(
        &self,
        ctx: &OpCtx<'_>,
        src: &str,
        dst: &str,
        nsrc: &str,
        ndst: &str,
    ) -> Result<(u64, Vec<INodeId>)> {
        if nsrc == "/" {
            return Err(FsError::InvalidPath("cannot rename /".into()));
        }
        let n = self.shards.len();
        let i = shard_index(nsrc, n)?;
        let j = shard_index(ndst, n)?;
        let mut guards = self.lock_all_ns_write(ctx);
        let sid = guards[i].resolve(nsrc)?;
        let src_is_file = guards[i].file_meta(sid).is_ok();
        // The destination must be free: a directory would mirror into
        // every shard (check any), a file hashes into shard j.
        if guards[0].resolve(ndst).is_ok() || guards[j].resolve(ndst).is_ok() {
            return Err(FsError::AlreadyExists(dst.to_string()));
        }
        let parent = parent_path(ndst);
        if !guards[0].status(&parent)?.is_dir {
            return Err(FsError::NotADirectory(parent));
        }
        if src_is_file {
            let meta = guards[i].file_meta(sid)?.clone();
            let charge = Namespace::charge_of(meta.rv, meta.len);
            if i == j {
                guards[i].rename(nsrc, ndst)?;
            } else {
                let (gi, gj) = pair_mut(&mut guards, i, j);
                let gj = gj.expect("i != j");
                let (fid, m) = gi.extract_file(nsrc)?;
                if let Err(e) = gj.implant_file(ndst, fid, m.clone()) {
                    gi.implant_file(nsrc, fid, m)?;
                    return Err(e);
                }
            }
            if let Err(e) = self.ledger.lock().transfer_file(nsrc, ndst, &charge) {
                if i == j {
                    guards[i].rename(ndst, nsrc)?;
                } else {
                    let (gi, gj) = pair_mut(&mut guards, i, j);
                    let gj = gj.expect("i != j");
                    let (fid, m) = gj.extract_file(ndst)?;
                    gi.implant_file(nsrc, fid, m)?;
                }
                return Err(e);
            }
            self.leases.lock().rename(nsrc, ndst);
            let seq = self.log.stage(EditOp::Rename { src: src.to_string(), dst: dst.to_string() });
            return Ok((seq, vec![sid]));
        }
        // Directory rename. Reject moving a directory under itself (by
        // component prefix — string prefixes would conflate `/a` and
        // `/ab`).
        let src_comps = parse_path(nsrc)?;
        let dst_comps = parse_path(ndst)?;
        if dst_comps.len() >= src_comps.len() && dst_comps[..src_comps.len()] == src_comps[..] {
            return Err(FsError::InvalidPath(format!(
                "cannot move {src} into its own subtree {dst}"
            )));
        }
        // Quota admission first: `rename_subtree` verifies the gaining
        // ancestor chain before anything mutates, so a refusal leaves the
        // namespace untouched.
        self.ledger.lock().rename_subtree(nsrc, ndst)?;
        let prefix = format!("{}/", nsrc.trim_end_matches('/'));
        let mut moved: Vec<INodeId> = Vec::new();
        for g in guards.iter() {
            for (fid, p, _) in g.iter_files() {
                if p.starts_with(&prefix) {
                    moved.push(fid);
                }
            }
        }
        for g in guards.iter_mut() {
            g.rename(nsrc, ndst)?;
        }
        // Re-stripe: a moved file whose new path hashes to a different
        // shard migrates via extract/implant.
        let dst_prefix = format!("{}/", ndst.trim_end_matches('/'));
        let mut migrations: Vec<(usize, usize, String)> = Vec::new();
        for (s, g) in guards.iter().enumerate() {
            for (_, p, _) in g.iter_files() {
                if p.starts_with(&dst_prefix) {
                    let want = shard_index(&p, n)?;
                    if want != s {
                        migrations.push((s, want, p));
                    }
                }
            }
        }
        for (from, to, p) in migrations {
            let (gf, gt) = pair_mut(&mut guards, from, to);
            let gt = gt.expect("from != to");
            let (fid, m) = gf.extract_file(&p)?;
            gt.implant_file(&p, fid, m)?;
        }
        self.leases.lock().rename(nsrc, ndst);
        let seq = self.log.stage(EditOp::Rename { src: src.to_string(), dst: dst.to_string() });
        Ok((seq, moved))
    }

    /// Deletes a path; block replicas are dropped from the block map and
    /// returned as `(block, location)` pairs for invalidation at the
    /// workers. Heat entries of the deleted files are forgotten — without
    /// this the tracker leaks one EWMA per deleted file forever. A file
    /// delete locks one shard; a directory delete locks all of them.
    pub fn delete(&self, path: &str, recursive: bool) -> Result<Vec<(BlockId, Location)>> {
        let ctx = self.op(MetaOp::Delete);
        ctx.finish_with(|| {
            self.check_writable()?;
            let npath = normalize(path)?;
            if npath == "/" {
                return Err(FsError::InvalidPath("cannot delete /".into()));
            }
            let i = shard_index(&npath, self.shards.len())?;
            let is_file = {
                let g = ctx.read(&self.shards[i]);
                let id = g.resolve(&npath)?;
                g.file_meta(id).is_ok()
            };
            let fast = if is_file { self.delete_file_fast(&ctx, path, &npath, i)? } else { None };
            let (seq, blocks, doomed) = match fast {
                Some(x) => x,
                None => self.delete_slow(&ctx, path, &npath, recursive)?,
            };
            // Blocks drop from their stripes after the namespace locks
            // release — the namespace is the source of truth, and a
            // lingering map entry is cleaned here or by block reports.
            let mut dropped = Vec::new();
            for b in blocks {
                if let Some(info) = self.block_shard(b).write().remove_block(b) {
                    dropped.extend(info.locations.into_iter().map(|l| (b, l)));
                }
            }
            {
                let mut heat = self.heat.lock();
                for f in doomed {
                    heat.forget(f);
                }
            }
            ctx.wait_durable(&self.log, seq)?;
            Ok(dropped)
        })
    }

    /// Single-shard file delete. `Ok(None)` when the path is no longer a
    /// plain file under the write lock (fall back to the slow path).
    fn delete_file_fast(
        &self,
        ctx: &OpCtx<'_>,
        path: &str,
        npath: &str,
        i: usize,
    ) -> Result<Option<FastDelete>> {
        let mut g = ctx.write(&self.shards[i]);
        let id = g.resolve(npath)?;
        let Ok(meta) = g.file_meta(id) else { return Ok(None) };
        let charge = Namespace::charge_of(meta.rv, meta.len);
        let blocks = g.delete(npath, false)?;
        self.ledger.lock().uncharge(npath, &charge);
        self.leases.lock().release(npath);
        let seq = self.log.stage(EditOp::Delete { path: path.to_string() });
        Ok(Some((seq, blocks, vec![id])))
    }

    /// All-shards delete: directories (every mirror drops the subtree,
    /// striped files across all shards go with it) and the file fallback.
    fn delete_slow(
        &self,
        ctx: &OpCtx<'_>,
        path: &str,
        npath: &str,
        recursive: bool,
    ) -> Result<(u64, Vec<BlockId>, Vec<INodeId>)> {
        let i = shard_index(npath, self.shards.len())?;
        let mut guards = self.lock_all_ns_write(ctx);
        let id = guards[i].resolve(npath)?;
        if guards[i].file_meta(id).is_ok() {
            // Raced back into a file — delete it from its shard inline.
            let meta = guards[i].file_meta(id)?.clone();
            let charge = Namespace::charge_of(meta.rv, meta.len);
            let blocks = guards[i].delete(npath, false)?;
            self.ledger.lock().uncharge(npath, &charge);
            self.leases.lock().release(npath);
            let seq = self.log.stage(EditOp::Delete { path: path.to_string() });
            return Ok((seq, blocks, vec![id]));
        }
        if !recursive {
            // The emptiness check must pass on EVERY mirror before any of
            // them mutates — passing `recursive: false` straight through
            // could delete the subtree from some mirrors and fail on
            // others, leaving the namespace diverged.
            for g in guards.iter() {
                if !g.list(npath)?.is_empty() {
                    return Err(FsError::DirectoryNotEmpty(path.to_string()));
                }
            }
        }
        let prefix = format!("{}/", npath.trim_end_matches('/'));
        let mut doomed: Vec<INodeId> = Vec::new();
        for g in guards.iter() {
            for (fid, p, _) in g.iter_files() {
                if p.starts_with(&prefix) {
                    doomed.push(fid);
                }
            }
        }
        let mut blocks = Vec::new();
        for g in guards.iter_mut() {
            blocks.extend(g.delete(npath, true)?);
        }
        self.ledger.lock().delete_subtree(npath);
        self.leases.lock().release(npath);
        let seq = self.log.stage(EditOp::Delete { path: path.to_string() });
        Ok((seq, blocks, doomed))
    }

    /// Sets a per-tier quota on a directory. The shard read guard is held
    /// through staging so a concurrent directory delete (which needs every
    /// write lock) cannot interleave a `Delete` before this `SetQuota` in
    /// the log — replay would fault on the missing directory.
    pub fn set_quota(&self, path: &str, quota: TierQuota) -> Result<()> {
        let ctx = self.op(MetaOp::SetQuota);
        ctx.finish_with(|| {
            self.check_writable()?;
            let npath = normalize(path)?;
            let g = ctx.read(&self.shards[shard_index(&npath, self.shards.len())?]);
            let st = g.status(&npath)?;
            if !st.is_dir {
                return Err(FsError::NotADirectory(path.to_string()));
            }
            self.ledger.lock().set_quota(&npath, quota)?;
            let seq = self.log.stage(EditOp::SetQuota { path: path.to_string(), quota });
            drop(g);
            ctx.wait_durable(&self.log, seq)
        })
    }

    /// A directory's quota and usage (from the quota ledger — the sole
    /// quota authority; shard mirrors carry no limits).
    pub fn quota_usage(&self, path: &str) -> Result<(TierQuota, [u64; MAX_TIERS])> {
        let npath = normalize(path)?;
        let g = self.shards[shard_index(&npath, self.shards.len())?].read();
        let st = g.status(&npath)?;
        if !st.is_dir {
            return Err(FsError::NotADirectory(path.to_string()));
        }
        drop(g);
        Ok(self.ledger.lock().quota_usage(&npath))
    }

    /// `(files, directories)` counts. Directories are mirrored, so shard 0
    /// counts them once; files stripe, so they sum.
    pub fn counts(&self) -> (usize, usize) {
        let guards: Vec<StatReadGuard<'_, Namespace>> =
            self.shards.iter().map(|s| s.read()).collect();
        let dirs = guards[0].counts().1;
        let files = guards.iter().map(|g| g.counts().0).sum();
        (files, dirs)
    }

    // -- Replication monitor (§5) -------------------------------------------

    /// Scans every block of every complete file, scheduling re-replication
    /// for under-replicated tiers and removal for over-replicated ones.
    /// Returned tasks are to be executed by workers; copies are recorded as
    /// pending so a rescan does not double-schedule. The scan walks shard
    /// by shard without a global barrier: concurrent metadata ops on other
    /// shards proceed while one stripe is inspected.
    pub fn replication_scan(&self) -> Vec<ReplicationTask> {
        if self.in_safe_mode() {
            return Vec::new();
        }
        let (snap, draining) = {
            let c = self.cluster.lock();
            let d: std::collections::HashSet<WorkerId> =
                c.workers().filter(|w| c.is_decommissioning(w.worker)).map(|w| w.worker).collect();
            (c.snapshot(), d)
        };
        let now = self.now_ms();
        let mut tasks = Vec::new();
        for shard in &self.shards {
            let files: Vec<(INodeId, ReplicationVector, Vec<BlockId>)> = {
                let g = shard.read();
                g.iter_files()
                    .into_iter()
                    .filter(|(_, _, meta)| meta.complete)
                    .map(|(id, _, meta)| (id, meta.rv, meta.blocks.clone()))
                    .collect()
            };
            for (file, rv, blocks) in files {
                for bid in blocks {
                    let mut bg = self.block_shard(bid).write();
                    let Some(info) = bg.get(bid) else { continue };
                    let block = info.block;
                    let confirmed = info.locations.clone();
                    let all = info.all_locations();
                    // Replicas on draining workers keep serving reads but
                    // do not count toward the replication target.
                    let counted: Vec<Location> =
                        all.iter().copied().filter(|l| !draining.contains(&l.worker)).collect();
                    let state = replication_state(rv, &counted);
                    if state.is_satisfied() {
                        continue;
                    }
                    if confirmed.is_empty() {
                        continue; // nothing to copy from yet
                    }

                    // Under-replication: build one placement request
                    // covering all deficits of this block.
                    let mut pins: Vec<Option<TierId>> = Vec::new();
                    for &(tier, count) in &state.under_pinned {
                        for _ in 0..count {
                            pins.push(Some(tier));
                        }
                    }
                    for _ in 0..state.under_unspecified {
                        pins.push(None);
                    }
                    if !pins.is_empty() {
                        let req = PlacementRequest {
                            block_size: block.len,
                            client: ClientLocation::OffCluster,
                            tier_pins: pins,
                            existing: all.iter().map(|l| l.media).collect(),
                            excluded_workers: Vec::new(),
                        };
                        if let Ok((media, rounds)) = self.placement.place_with_audit(&snap, &req) {
                            let mut targets = Vec::new();
                            for m in media {
                                let located = { self.cluster.lock().locate_media(m) };
                                let Some((worker, tier)) = located else { continue };
                                let target = Location { worker, media: m, tier };
                                let sources = self.retrieval.order(
                                    &snap,
                                    ClientLocation::OnWorker(worker),
                                    &confirmed,
                                );
                                bg.add_pending(bid, &[target]).ok();
                                self.cluster.lock().schedule_write(m, block.len);
                                targets.push(target);
                                tasks.push(ReplicationTask::Copy { block, sources, target });
                            }
                            if !targets.is_empty() {
                                self.audit.push(DecisionEvent {
                                    seq: 0,
                                    when_ms: now,
                                    kind: DecisionKind::Placement,
                                    block: bid,
                                    file,
                                    policy: self.placement.name().to_string(),
                                    chosen: targets,
                                    rounds,
                                });
                            }
                        }
                    }

                    // Over-replication: pick victims per over-replicated
                    // tier.
                    for &(tier, count) in &state.over {
                        let mut current = confirmed.clone();
                        for _ in 0..count {
                            // Never trim the last confirmed replica: a
                            // demotion like ⟨1,0,0⟩ → ⟨0,0,1⟩ makes the
                            // memory replica surplus while it is still the
                            // only copy (and the source of this round's HDD
                            // copy). The trim waits until the new replica
                            // confirms.
                            if current.len() <= 1 {
                                break;
                            }
                            let (victim, candidates) = choose_replica_to_remove_explained(
                                &snap,
                                &current,
                                Some(tier),
                                block.len,
                            );
                            let Some(victim) = victim else {
                                break;
                            };
                            current.retain(|l| l != &victim);
                            bg.remove_replica(bid, victim.media);
                            self.audit.push(DecisionEvent {
                                seq: 0,
                                when_ms: now,
                                kind: DecisionKind::Removal,
                                block: bid,
                                file,
                                policy: "leave-one-out".to_string(),
                                chosen: vec![victim],
                                rounds: vec![DecisionRound {
                                    replica_index: 0,
                                    tier_pin: Some(tier),
                                    chosen_media: Some(victim.media),
                                    candidates,
                                }],
                            });
                            tasks.push(ReplicationTask::Delete { block, location: victim });
                        }
                    }
                }
            }
        }
        for task in &tasks {
            let kind = match task {
                ReplicationTask::Copy { .. } => "copy",
                ReplicationTask::Delete { .. } => "delete",
            };
            self.metrics.inc("master_replication_tasks_total", Labels::req(kind));
        }
        tasks
    }

    /// The data balancer (the HDFS balancer's role, §8's manual tool made
    /// policy-driven): finds media whose utilization exceeds their tier's
    /// mean by more than `threshold` (fraction of capacity) and schedules
    /// copies of replicas they host onto better media in the same tier,
    /// chosen by the MOOP machinery. The over-replication path of the next
    /// [`Master::replication_scan`] then trims the worst replica — which
    /// is the overloaded source — completing the move. Returns at most
    /// `max_moves` copy tasks.
    pub fn balancer_scan(&self, threshold: f64, max_moves: usize) -> Vec<ReplicationTask> {
        if self.in_safe_mode() {
            return Vec::new();
        }
        let snap = self.cluster.lock().snapshot();

        // Per-media and per-tier utilization.
        let mut tier_used = vec![(0u64, 0u64); snap.num_tiers]; // (used, cap)
        let mut media_frac: HashMap<MediaId, f64> = HashMap::new();
        for m in &snap.media {
            let used = m.capacity.saturating_sub(m.remaining);
            let t = &mut tier_used[m.tier.0 as usize];
            t.0 += used;
            t.1 += m.capacity;
            if m.capacity > 0 {
                media_frac.insert(m.media, used as f64 / m.capacity as f64);
            }
        }
        let tier_mean: Vec<f64> = tier_used
            .iter()
            .map(|&(u, c)| if c == 0 { 0.0 } else { u as f64 / c as f64 })
            .collect();

        let overloaded: Vec<&MediaStats> = snap
            .media
            .iter()
            .filter(|m| {
                media_frac.get(&m.media).copied().unwrap_or(0.0)
                    > tier_mean[m.tier.0 as usize] + threshold
            })
            .collect();
        if overloaded.is_empty() {
            return Vec::new();
        }

        let mut tasks = Vec::new();
        'media: for src in overloaded {
            if tasks.len() >= max_moves {
                break;
            }
            for bshard in &self.blocks {
                // A block hosted on the overloaded medium with no pending
                // work, collected under a read lock; the commitment below
                // re-verifies under the write lock.
                let candidates: Vec<(BlockId, Block, Vec<Location>)> = {
                    let g = bshard.read();
                    g.iter()
                        .filter(|(_, info)| info.pending.is_empty())
                        .filter(|(_, info)| info.locations.iter().any(|l| l.media == src.media))
                        .map(|(&id, info)| (id, info.block, info.locations.clone()))
                        .collect()
                };
                for (id, block, locations) in candidates {
                    let req = PlacementRequest {
                        block_size: block.len,
                        client: ClientLocation::OffCluster,
                        tier_pins: vec![Some(src.tier)],
                        existing: locations.iter().map(|l| l.media).collect(),
                        excluded_workers: Vec::new(),
                    };
                    let Ok(placed) = self.placement.place(&snap, &req) else { continue };
                    let Some(&target_media) = placed.first() else { continue };
                    // Only move toward genuinely less utilized media.
                    let target_frac = media_frac.get(&target_media).copied().unwrap_or(0.0);
                    let src_frac = media_frac.get(&src.media).copied().unwrap_or(0.0);
                    if target_frac + threshold / 2.0 >= src_frac {
                        continue;
                    }
                    let located = { self.cluster.lock().locate_media(target_media) };
                    let Some((worker, tier)) = located else { continue };
                    let target = Location { worker, media: target_media, tier };
                    let sources =
                        self.retrieval.order(&snap, ClientLocation::OnWorker(worker), &locations);
                    {
                        let mut g = bshard.write();
                        let still = g
                            .get(id)
                            .map(|i| {
                                i.pending.is_empty()
                                    && i.locations.iter().any(|l| l.media == src.media)
                            })
                            .unwrap_or(false);
                        if !still {
                            continue;
                        }
                        g.add_pending(id, &[target]).ok();
                    }
                    self.cluster.lock().schedule_write(target_media, block.len);
                    tasks.push(ReplicationTask::Copy { block, sources, target });
                    continue 'media;
                }
            }
        }
        tasks
    }

    // -- Automated tiering (ROADMAP item 3) ----------------------------------

    /// The auto-tiering migration planner: classifies every complete file's
    /// temperature from its heat EWMA through `classifier`, and turns
    /// classification changes into replication-vector edits — a hot file
    /// without a Memory-tier replica gains one (promotion), a cold file
    /// with one loses it (demotion). Warm files, and files already placed
    /// to match their temperature, are left alone; that hysteresis band
    /// stops tier ping-pong.
    ///
    /// Vector edits are exactly what `setReplication` would do, so the §5
    /// replication monitor realizes them as ordinary copy/delete tasks on
    /// the next scan; callers wanting bounded background bandwidth execute
    /// that scan through the paced migration round (net monitor). Rounds
    /// are bounded by `cfg` (files and copy bytes per round), promotions
    /// are capacity-checked against the Memory tier, demotions run first
    /// so they free budget for promotions, and every move is recorded as a
    /// [`DecisionKind::Migration`] audit event.
    ///
    /// The scan collects candidates shard by shard (no global barrier) and
    /// applies each decision under only that file's shard lock,
    /// re-verifying that nothing raced in between.
    pub fn autotier_scan(
        &self,
        classifier: &dyn TierClassifier,
        cfg: &AutoTierConfig,
    ) -> Vec<MigrationDecision> {
        if self.in_safe_mode() {
            return Vec::new();
        }
        let now = self.now_ms();
        let mem = StorageTier::Memory.id();
        let hdd = StorageTier::Hdd.id();
        if mem.0 as usize >= self.config.tiers.len() {
            return Vec::new(); // no memory tier configured: nothing to tier
        }

        let mut files: Vec<(INodeId, String, ReplicationVector, u64, BlockId)> = Vec::new();
        for shard in &self.shards {
            let g = shard.read();
            for (id, path, meta) in g.iter_files() {
                if meta.complete && !meta.blocks.is_empty() {
                    files.push((
                        id,
                        path,
                        meta.rv,
                        meta.len,
                        *meta.blocks.first().expect("non-empty"),
                    ));
                }
            }
        }
        let scored: Vec<(INodeId, String, ReplicationVector, u64, BlockId, HeatInfo)> = {
            let heat = self.heat.lock();
            files
                .into_iter()
                .map(|(id, path, rv, len, b)| {
                    let info = heat.info(id, now);
                    (id, path, rv, len, b, info)
                })
                .collect()
        };

        // Headroom for promotions: what the Memory tier can still absorb.
        let mut mem_remaining = self
            .cluster
            .lock()
            .tier_reports(&self.config.tiers)
            .iter()
            .find(|r| r.stats.tier == mem)
            .map(|r| r.stats.remaining)
            .unwrap_or(0);

        // Demotions first (they free memory), then promotions hottest
        // first, so a tight round spends its budget on the hottest files.
        let mut demotions = Vec::new();
        let mut promotions = Vec::new();
        for (id, path, rv, len, b, info) in scored {
            match classifier.classify(&info) {
                Temperature::Cold if rv.tier(mem) > 0 => {
                    let mut to = rv.with_tier(mem, 0);
                    if to.total() == 0 {
                        // Never demote a file out of existence: the memory
                        // pin was its only replica, so it moves to HDD.
                        to = to.with_tier(hdd, 1);
                    }
                    demotions.push((id, path, rv, to, len, b, info.score));
                }
                Temperature::Hot if rv.tier(mem) == 0 => {
                    let to = rv.with_tier(mem, 1);
                    promotions.push((id, path, rv, to, len, b, info.score));
                }
                _ => {}
            }
        }
        promotions.sort_by(|a, b| b.6.partial_cmp(&a.6).unwrap().then(a.0.cmp(&b.0)));

        let mut decisions = Vec::new();
        let mut copy_bytes_planned = 0u64;
        for (id, path, from, to, len, block, score) in demotions.into_iter().chain(promotions) {
            if decisions.len() >= cfg.max_files_per_round {
                break;
            }
            let direction = if to.tier(mem) > from.tier(mem) {
                MigrationDirection::Promote
            } else {
                MigrationDirection::Demote
            };
            let added: u64 = from.diff(to).additions().map(|(_, n)| n as u64).sum();
            let copy_bytes = len.saturating_mul(added);
            if copy_bytes_planned.saturating_add(copy_bytes) > cfg.max_bytes_per_round {
                continue; // a smaller file later in the order may still fit
            }
            if direction == MigrationDirection::Promote {
                if len > mem_remaining {
                    continue; // no headroom: wait for demotions to land
                }
                mem_remaining -= len;
            }
            if to.validate(self.config.tiers.len(), self.config.max_replication).is_err() {
                continue;
            }
            // Apply under the file's shard lock, re-verifying the file is
            // unchanged (same inode, vector, and length) — a rename,
            // delete, or setReplication may have raced the scan.
            let Ok(s) = shard_index(&path, self.shards.len()) else { continue };
            let mut ns = self.shards[s].write();
            let unchanged = ns.resolve(&path).is_ok_and(|rid| rid == id)
                && ns.file_meta(id).map(|m| m.rv == from && m.len == len).unwrap_or(false);
            if !unchanged {
                continue; // raced: skip this round
            }
            let recharged = len > 0;
            if recharged
                && self
                    .ledger
                    .lock()
                    .recharge(
                        &path,
                        &Namespace::charge_of(from, len),
                        &Namespace::charge_of(to, len),
                    )
                    .is_err()
            {
                continue; // quota: skip this round
            }
            if ns.set_replication(&path, to).is_err() {
                if recharged {
                    let _ = self.ledger.lock().recharge(
                        &path,
                        &Namespace::charge_of(to, len),
                        &Namespace::charge_of(from, len),
                    );
                }
                continue;
            }
            // The scan holds the shard lock across the synchronous append
            // (the committer path of the group commit), keeping namespace
            // and log consistent if the write fails.
            if self.log.append_sync(EditOp::SetReplication { path: path.clone(), rv: to }).is_err()
            {
                let _ = ns.set_replication(&path, from);
                if recharged {
                    let _ = self.ledger.lock().recharge(
                        &path,
                        &Namespace::charge_of(to, len),
                        &Namespace::charge_of(from, len),
                    );
                }
                continue;
            }
            drop(ns);
            copy_bytes_planned += copy_bytes;
            self.audit.push(DecisionEvent {
                seq: 0,
                when_ms: now,
                kind: DecisionKind::Migration,
                block,
                file: id,
                policy: format!(
                    "{}: {} score={score:.3} {from} -> {to}",
                    classifier.name(),
                    direction.label(),
                ),
                chosen: Vec::new(),
                rounds: Vec::new(),
            });
            self.metrics.inc("master_migrations_total", Labels::req(direction.label()));
            self.metrics.add("master_migration_copy_bytes_total", Labels::NONE, copy_bytes);
            decisions.push(MigrationDecision {
                file: id,
                path,
                score,
                direction,
                from,
                to,
                copy_bytes,
            });
        }
        decisions
    }

    /// The most recent `n` retained [`DecisionKind::Migration`] audit
    /// events, oldest first (the `Migrations` RPC / `octofs-remote
    /// migrations`).
    pub fn recent_migrations(&self, n: usize) -> Vec<DecisionEvent> {
        let all = self.audit.recent(usize::MAX);
        let migrations: Vec<DecisionEvent> =
            all.into_iter().filter(|e| e.kind == DecisionKind::Migration).collect();
        let skip = migrations.len().saturating_sub(n);
        migrations.into_iter().skip(skip).collect()
    }

    // -- Checkpointing -------------------------------------------------------

    /// Serializes the namespace to a checkpoint image: the shards merge
    /// back into one namespace (directories from the mirror, files from
    /// every stripe, quotas from the ledger), which encodes exactly as the
    /// pre-shard format — checkpoints are shard-count independent, so a
    /// restore may use a different `master_shards` than the writer.
    pub fn checkpoint(&self) -> Vec<u8> {
        let guards: Vec<StatReadGuard<'_, Namespace>> =
            self.shards.iter().map(|s| s.read()).collect();
        let ledger = self.ledger.lock();
        let mut merged = Namespace::new();
        for (path, _) in guards[0].iter_dirs() {
            merged.mkdir(&path, true).expect("mirrored directories re-create cleanly");
        }
        let mut files: Vec<(INodeId, String, crate::namespace::FileMeta)> = Vec::new();
        for g in &guards {
            for (id, p, m) in g.iter_files() {
                files.push((id, p, m.clone()));
            }
        }
        files.sort_by(|a, b| a.1.cmp(&b.1));
        for (id, p, m) in files {
            merged.implant_file(&p, id, m).expect("striped files are disjoint");
        }
        // Quotas go on last: usage accumulated during the implants above
        // always satisfies limits the ledger admitted live.
        for (path, quota, _) in ledger.entries() {
            if quota != TierQuota::unlimited() {
                merged.set_quota(&path, quota).expect("ledger usage within admitted limits");
            }
        }
        encode_image(&merged)
    }

    /// Restores a master from a checkpoint image (locations empty until
    /// block reports arrive, as in HDFS).
    pub fn restore(config: ClusterConfig, image: &[u8]) -> Result<Self> {
        let ops = decode_stream(image)?;
        let mut log = EditLog::in_memory();
        for op in ops {
            log.append(op)?;
        }
        Self::with_log(config, log)
    }

    /// The *durable* edit-log ops recorded at or after `from` (tailed by
    /// the backup master — staged-but-unsynced ops are not yet visible).
    pub fn edits_since(&self, from: usize) -> Vec<EditOp> {
        self.log.since(from)
    }

    /// Number of durable ops in the edit log.
    pub fn edit_count(&self) -> usize {
        self.log.durable_len()
    }

    /// The policy-facing snapshot (exposed for harnesses and tests).
    pub fn snapshot(&self) -> octopus_policies::ClusterSnapshot {
        self.cluster.lock().snapshot()
    }

    /// Confirmed replica locations of a block (test/diagnostic hook).
    pub fn block_locations(&self, id: BlockId) -> Vec<Location> {
        self.block_shard(id).read().get(id).map(|i| i.locations.clone()).unwrap_or_default()
    }

    /// Every `(block, owning file)` pair across the block-map stripes, in
    /// block-id order (test/diagnostic hook — the namespace↔blockmap
    /// bijection invariant of the shard stress suite audits against it).
    pub fn block_inventory(&self) -> Vec<(BlockId, INodeId)> {
        let mut out: Vec<(BlockId, INodeId)> = Vec::new();
        for stripe in &self.blocks {
            let g = stripe.read();
            out.extend(g.iter().map(|(id, info)| (*id, info.file)));
        }
        out.sort_by_key(|(id, _)| *id);
        out
    }

    /// Still-pending (scheduled, uncommitted) replica locations of a block
    /// (test/diagnostic hook).
    pub fn pending_locations(&self, id: BlockId) -> Vec<Location> {
        self.block_shard(id).read().get(id).map(|i| i.pending.clone()).unwrap_or_default()
    }

    /// Scheduled-write bytes currently reserved against a medium
    /// (test/diagnostic hook for reservation-leak regressions).
    pub fn scheduled_bytes(&self, media: MediaId) -> u64 {
        self.cluster.lock().scheduled_bytes(media)
    }

    // -- Tiering telemetry ---------------------------------------------------

    /// Access-heat summary for the file at `path` as of the master's
    /// logical clock. Untouched files report all-zero heat.
    pub fn file_heat(&self, path: &str) -> Result<HeatInfo> {
        let npath = normalize(path)?;
        let file = self.shards[shard_index(&npath, self.shards.len())?].read().resolve(path)?;
        Ok(self.heat.lock().info(file, self.now_ms()))
    }

    /// Number of files the heat tracker currently holds state for. Bounded
    /// by delete/rename forgetting and the per-tick decay GC — the
    /// heat-leak regression tests pin that behaviour.
    pub fn heat_tracked_files(&self) -> usize {
        self.heat.lock().len()
    }

    /// The `k` hottest files by EWMA heat score, hottest first, with their
    /// current namespace paths. Files deleted since their last touch are
    /// omitted.
    pub fn hot_files(&self, k: usize) -> Vec<HotFile> {
        let now = self.now_ms();
        // Over-fetch so deleted files do not shrink the answer below `k`.
        let hottest = self.heat.lock().hottest(k.saturating_mul(2), now);
        let guards: Vec<StatReadGuard<'_, Namespace>> =
            self.shards.iter().map(|s| s.read()).collect();
        let mut out = Vec::new();
        for heat in hottest {
            if out.len() >= k {
                break;
            }
            let Some(g) = guards.iter().find(|g| g.file_meta(heat.file).is_ok()) else { continue };
            let path = g.path_of(heat.file);
            out.push(HotFile { path, heat });
        }
        out
    }

    /// Every audited decision event still retained for `block`, oldest
    /// first — placement, reassignment, retrieval orderings, and removals.
    pub fn explain(&self, block: BlockId) -> Vec<DecisionEvent> {
        self.audit.by_block(block)
    }

    /// The most recent `n` decision events across all blocks.
    pub fn recent_decisions(&self, n: usize) -> Vec<DecisionEvent> {
        self.audit.recent(n)
    }

    /// The master's time-series ring (sampled on [`Master::tick`]).
    pub fn series_points(&self) -> Vec<SeriesPoint> {
        self.series.points()
    }

    /// One-stop cluster status for the operator surface: namespace and
    /// block counts, per-tier aggregates, per-worker lines, the hottest
    /// files, and audit-ring occupancy.
    pub fn cluster_status(&self, hot_k: usize) -> ClusterStatusReport {
        let files: u64 = self.shards.iter().map(|s| s.read().counts().0 as u64).sum();
        let (mut blocks, mut in_flight_blocks) = (0u64, 0u64);
        for b in &self.blocks {
            let g = b.read();
            blocks += g.len() as u64;
            in_flight_blocks += g.iter().filter(|(_, i)| !i.pending.is_empty()).count() as u64;
        }
        let (scheduled_bytes, tiers, workers) = {
            let c = self.cluster.lock();
            let workers: Vec<WorkerStatusLine> = c
                .workers()
                .map(|w| WorkerStatusLine {
                    worker: w.worker,
                    rack: w.rack,
                    live: w.live,
                    nr_conn: w.nr_conn,
                    last_heartbeat_ms: w.last_heartbeat_ms,
                    media: w.media.clone(),
                })
                .collect();
            (c.total_scheduled_bytes(), c.tier_reports(&self.config.tiers), workers)
        };
        ClusterStatusReport {
            now_ms: self.now_ms(),
            safe_mode: self.in_safe_mode(),
            files,
            blocks,
            in_flight_blocks,
            scheduled_bytes,
            tiers,
            workers,
            hot: self.hot_files(hot_k),
            decisions_recorded: self.audit.recorded(),
            decisions_retained: self.audit.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_common::{MediaId, StorageTier};
    use octopus_policies::EwmaThresholdClassifier;

    /// Registers `n` live workers with one medium per tier each, as if
    /// heartbeats had arrived.
    fn boot_master(n: u32) -> Master {
        let config = ClusterConfig::test_cluster(n, 10 << 20, 1 << 20);
        let master = Master::new(config.clone()).unwrap();
        for w in 0..n {
            let rack = RackId((w % 2) as u16);
            master.register_worker(WorkerId(w), rack, 1e9, 0);
            let media: Vec<MediaStats> = (0..3u8)
                .map(|t| MediaStats {
                    media: MediaId(w * 3 + t as u32),
                    worker: WorkerId(w),
                    rack,
                    tier: TierId(t),
                    capacity: 10 << 20,
                    remaining: 10 << 20,
                    nr_conn: 0,
                    write_thru: [1900.0, 340.0, 126.0][t as usize] * 1048576.0,
                    read_thru: [3200.0, 420.0, 177.0][t as usize] * 1048576.0,
                })
                .collect();
            master.heartbeat(WorkerId(w), media, 0, 0).unwrap();
        }
        master
    }

    fn rv_u(r: u8) -> ReplicationVector {
        ReplicationVector::from_replication_factor(r)
    }

    #[test]
    fn create_write_read_lifecycle() {
        let m = boot_master(6);
        m.mkdir("/data").unwrap();
        m.create_file("/data/f", rv_u(3), None).unwrap();
        let (block, locs) = m.add_block("/data/f", 1 << 20, ClientLocation::OffCluster).unwrap();
        assert_eq!(locs.len(), 3);
        for l in &locs {
            m.commit_replica(block, *l).unwrap();
        }
        m.complete_file("/data/f").unwrap();
        let located =
            m.get_file_block_locations("/data/f", 0, u64::MAX, ClientLocation::OffCluster).unwrap();
        assert_eq!(located.len(), 1);
        assert_eq!(located[0].locations.len(), 3);
        assert_eq!(located[0].block, block);
        let st = m.status("/data/f").unwrap();
        assert_eq!(st.len, 1 << 20);
        assert!(st.complete);
    }

    #[test]
    fn add_block_validations() {
        let m = boot_master(3);
        m.create_file("/f", rv_u(2), None).unwrap();
        assert!(m.add_block("/f", 0, ClientLocation::OffCluster).is_err());
        assert!(m.add_block("/f", 2 << 20, ClientLocation::OffCluster).is_err());
        m.complete_file("/f").unwrap();
        assert!(m.add_block("/f", 1 << 20, ClientLocation::OffCluster).is_err());
    }

    #[test]
    fn create_file_validates_vector() {
        let m = boot_master(3);
        // Tier 3 (Remote) is not configured in the test cluster.
        let bad = ReplicationVector::mshru(0, 0, 0, 1, 0);
        assert!(m.create_file("/f", bad, None).is_err());
        assert!(m.create_file("/f", ReplicationVector::EMPTY, None).is_err());
        let over = rv_u(200);
        assert!(m.create_file("/f", over, None).is_err());
    }

    #[test]
    fn scheduled_writes_prevent_oversubscription() {
        // Media have 10 MB; place 10 blocks of 1 MB with r=3 on 6 workers:
        // every placement must see reduced remaining and still succeed.
        let m = boot_master(6);
        m.create_file("/f", rv_u(3), None).unwrap();
        for _ in 0..10 {
            let (block, locs) = m.add_block("/f", 1 << 20, ClientLocation::OffCluster).unwrap();
            for l in locs {
                m.commit_replica(block, l).unwrap();
            }
        }
        let snap = m.snapshot();
        // 30 MB written over 18 media of 10 MB: nothing negative.
        for media in &snap.media {
            assert!(media.remaining <= 10 << 20);
        }
    }

    #[test]
    fn abort_replica_releases_the_scheduled_reservation() {
        // Regression: abort_replica used to call complete_write(media, 0),
        // which released zero of the `len` bytes add_block reserved via
        // schedule_write — every aborted pipeline stage leaked its
        // reservation until the medium looked permanently full.
        let m = boot_master(6);
        m.create_file("/f", rv_u(3), None).unwrap();
        let (block, locs) = m.add_block("/f", 1 << 20, ClientLocation::OffCluster).unwrap();
        for l in &locs {
            assert_eq!(m.scheduled_bytes(l.media), 1 << 20);
        }
        // The whole pipeline fails before storing anything.
        for l in &locs {
            m.abort_replica(block, *l);
        }
        for l in &locs {
            assert_eq!(m.scheduled_bytes(l.media), 0, "aborted stage must return its reservation");
        }
        assert!(m.pending_locations(block.id).is_empty());
        // A repeated (spurious) abort must not underflow or double-release.
        m.abort_replica(block, locs[0]);
        assert_eq!(m.scheduled_bytes(locs[0].media), 0);
    }

    #[test]
    fn abort_replica_refuses_to_demote_a_committed_location() {
        let m = boot_master(6);
        m.create_file("/f", rv_u(3), None).unwrap();
        let (block, locs) = m.add_block("/f", 1 << 20, ClientLocation::OffCluster).unwrap();
        // Stages 1 and 2 store and commit; the forwarder then loses the
        // connection and sends aborts for every downstream stage.
        m.commit_replica(block, locs[1]).unwrap();
        m.commit_replica(block, locs[2]).unwrap();
        m.abort_replica(block, locs[1]);
        m.abort_replica(block, locs[2]);
        let live = m.block_locations(block.id);
        assert!(live.contains(&locs[1]) && live.contains(&locs[2]));
        assert_eq!(live.len(), 2, "late aborts must not strip committed replicas");
        // Committed stages already consumed their reservation via
        // commit_replica; the late abort must not touch it again.
        assert_eq!(m.scheduled_bytes(locs[1].media), 0);
    }

    #[test]
    fn replication_scan_restores_lost_replicas() {
        let m = boot_master(6);
        m.create_file("/f", rv_u(3), None).unwrap();
        let (block, locs) = m.add_block("/f", 1 << 20, ClientLocation::OffCluster).unwrap();
        for l in &locs {
            m.commit_replica(block, *l).unwrap();
        }
        m.complete_file("/f").unwrap();
        assert!(m.replication_scan().is_empty(), "satisfied block needs no tasks");

        // Kill the worker hosting the first replica.
        m.kill_worker(locs[0].worker);
        let tasks = m.replication_scan();
        assert_eq!(tasks.len(), 1);
        let ReplicationTask::Copy { block: b, sources, target } = &tasks[0] else {
            panic!("expected a copy task");
        };
        assert_eq!(b.id, block.id);
        assert!(!sources.is_empty());
        assert_ne!(target.worker, locs[0].worker);
        // Sources must be surviving confirmed replicas.
        for s in sources {
            assert!(locs[1..].contains(s));
        }
        // A second scan must not double-schedule.
        assert!(m.replication_scan().is_empty());
        // Completing the copy confirms the replica.
        m.commit_replica(block, *target).unwrap();
        assert_eq!(m.block_locations(block.id).len(), 3);
    }

    #[test]
    fn set_replication_triggers_move_between_tiers() {
        let m = boot_master(6);
        // Pin: 1 memory + 2 HDD.
        m.create_file("/f", ReplicationVector::msh(1, 0, 2), None).unwrap();
        let (block, locs) = m.add_block("/f", 1 << 20, ClientLocation::OffCluster).unwrap();
        for l in &locs {
            m.commit_replica(block, *l).unwrap();
        }
        m.complete_file("/f").unwrap();

        // Move one HDD replica to SSD: ⟨1,0,2⟩ → ⟨1,1,1⟩.
        let old = m.set_replication("/f", ReplicationVector::msh(1, 1, 1)).unwrap();
        assert_eq!(old, ReplicationVector::msh(1, 0, 2));
        let tasks = m.replication_scan();
        let copies: Vec<_> =
            tasks.iter().filter(|t| matches!(t, ReplicationTask::Copy { .. })).collect();
        let deletes: Vec<_> =
            tasks.iter().filter(|t| matches!(t, ReplicationTask::Delete { .. })).collect();
        assert_eq!(copies.len(), 1);
        assert_eq!(deletes.len(), 1);
        if let ReplicationTask::Copy { target, .. } = copies[0] {
            assert_eq!(target.tier, StorageTier::Ssd.id());
        }
        if let ReplicationTask::Delete { location, .. } = deletes[0] {
            assert_eq!(location.tier, StorageTier::Hdd.id());
        }
    }

    #[test]
    fn delete_returns_locations_for_invalidation() {
        let m = boot_master(3);
        m.create_file("/f", rv_u(2), None).unwrap();
        let (block, locs) = m.add_block("/f", 1 << 20, ClientLocation::OffCluster).unwrap();
        for l in &locs {
            m.commit_replica(block, *l).unwrap();
        }
        m.complete_file("/f").unwrap();
        let dropped = m.delete("/f", false).unwrap();
        assert_eq!(dropped.len(), 2);
        assert!(m.status("/f").is_err());
        assert!(m.block_locations(block.id).is_empty());
    }

    #[test]
    fn block_report_reconciles() {
        let m = boot_master(3);
        m.create_file("/f", rv_u(1), None).unwrap();
        let (block, locs) = m.add_block("/f", 1 << 20, ClientLocation::OffCluster).unwrap();
        let loc = locs[0];
        // Worker reports the block: pending → confirmed.
        let invalid = m.block_report(loc.worker, &[(block, loc.media)]).unwrap();
        assert!(invalid.is_empty());
        assert_eq!(m.block_locations(block.id), vec![loc]);
        // Worker reports an unknown block → invalidation.
        let ghost = Block { id: BlockId(9999), gen: GenStamp(0), len: 1 };
        let invalid =
            m.block_report(loc.worker, &[(block, loc.media), (ghost, loc.media)]).unwrap();
        assert_eq!(invalid, vec![BlockId(9999)]);
        // Worker stops reporting the block → replica dropped.
        let invalid = m.block_report(loc.worker, &[]).unwrap();
        assert!(invalid.is_empty());
        assert!(m.block_locations(block.id).is_empty());
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let m = boot_master(3);
        m.mkdir("/a/b").unwrap();
        m.create_file("/a/f", rv_u(2), None).unwrap();
        let (block, locs) = m.add_block("/a/f", 1 << 20, ClientLocation::OffCluster).unwrap();
        for l in &locs {
            m.commit_replica(block, *l).unwrap();
        }
        m.complete_file("/a/f").unwrap();

        let image = m.checkpoint();
        let restored = Master::restore(m.config().clone(), &image).unwrap();
        let st = restored.status("/a/f").unwrap();
        assert_eq!(st.len, 1 << 20);
        assert!(st.complete);
        // Locations are rebuilt from block reports.
        assert!(restored.block_locations(block.id).is_empty());
        restored.register_worker(locs[0].worker, RackId(0), 1e9, 0);
        let media_stats = vec![MediaStats {
            media: locs[0].media,
            worker: locs[0].worker,
            rack: RackId(0),
            tier: locs[0].tier,
            capacity: 10 << 20,
            remaining: 9 << 20,
            nr_conn: 0,
            write_thru: 1e8,
            read_thru: 1e8,
        }];
        restored.heartbeat(locs[0].worker, media_stats, 0, 0).unwrap();
        restored.block_report(locs[0].worker, &[(block, locs[0].media)]).unwrap();
        assert_eq!(restored.block_locations(block.id), vec![locs[0]]);
        // New block ids never collide with restored ones.
        restored.create_file("/a/g", rv_u(1), None).unwrap();
        // (worker capacity is tracked; a fresh block id is issued)
        let (b2, _) = restored.add_block("/a/g", 1 << 20, ClientLocation::OffCluster).unwrap();
        assert!(b2.id > block.id);
    }

    #[test]
    fn dead_worker_tick_drops_locations() {
        let m = boot_master(4);
        m.create_file("/f", rv_u(3), None).unwrap();
        let (block, locs) = m.add_block("/f", 1 << 20, ClientLocation::OffCluster).unwrap();
        for l in &locs {
            m.commit_replica(block, *l).unwrap();
        }
        // heartbeat_ms=100, dead_after_missed=10 → all workers dead at t>1000.
        let dead = m.tick(5000);
        assert_eq!(dead.len(), 4);
        assert!(m.block_locations(block.id).is_empty());
    }

    #[test]
    fn tier_reports_present() {
        let m = boot_master(3);
        let reports = m.get_storage_tier_reports();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].name, "Memory");
        assert!(reports[0].volatile);
        assert_eq!(reports[2].stats.num_media, 3);
    }

    #[test]
    fn quota_flow_through_master() {
        let m = boot_master(3);
        m.mkdir("/tenant").unwrap();
        m.set_quota("/tenant", TierQuota::limit_tier(0, 1 << 20)).unwrap();
        m.create_file("/tenant/f", ReplicationVector::msh(1, 0, 1), None).unwrap();
        m.add_block("/tenant/f", 1 << 20, ClientLocation::OffCluster).unwrap();
        let err = m.add_block("/tenant/f", 1 << 20, ClientLocation::OffCluster);
        assert!(matches!(err, Err(FsError::QuotaExceeded(_))));
        let (q, usage) = m.quota_usage("/tenant").unwrap();
        assert_eq!(q, TierQuota::limit_tier(0, 1 << 20));
        assert_eq!(usage[0], 1 << 20);
    }

    /// Writes a complete one-block file and returns its block.
    fn put_file(m: &Master, path: &str, rv: ReplicationVector) -> Block {
        m.create_file(path, rv, None).unwrap();
        let (block, locs) = m.add_block(path, 1 << 20, ClientLocation::OffCluster).unwrap();
        for l in &locs {
            m.commit_replica(block, *l).unwrap();
        }
        m.complete_file(path).unwrap();
        block
    }

    fn touch(m: &Master, block: Block, reads: u32, now_ms: u64) {
        m.observe_touches(&[BlockTouches { block: block.id, reads, writes: 0 }], now_ms);
    }

    #[test]
    fn delete_forgets_file_heat_and_recreated_file_starts_cold() {
        // Regression: heat entries used to outlive their inode — delete
        // left the tracker entry in place forever, and a file re-created
        // at the same path could inherit nothing (new inode id) while the
        // dead entry still leaked memory and polluted `hot_files`.
        let m = boot_master(3);
        let block = put_file(&m, "/f", rv_u(1));
        touch(&m, block, 5, 0);
        assert_eq!(m.heat_tracked_files(), 1);
        assert_eq!(m.hot_files(10).len(), 1);

        m.delete("/f", false).unwrap();
        assert_eq!(m.heat_tracked_files(), 0, "delete must forget the file's heat");
        assert!(m.hot_files(10).is_empty());

        // Re-creating the path yields a cold file: no tracked heat and no
        // promotion from the auto-tiering planner.
        put_file(&m, "/f", rv_u(1));
        assert_eq!(m.heat_tracked_files(), 0);
        let decisions =
            m.autotier_scan(&EwmaThresholdClassifier::default(), &AutoTierConfig::default());
        assert!(
            !decisions.iter().any(|d| d.direction == MigrationDirection::Promote),
            "recreated file must start cold"
        );
    }

    #[test]
    fn delete_recursive_forgets_subtree_heat() {
        let m = boot_master(3);
        m.mkdir("/d").unwrap();
        let a = put_file(&m, "/d/a", rv_u(1));
        let b = put_file(&m, "/d/b", rv_u(1));
        touch(&m, a, 3, 0);
        touch(&m, b, 3, 0);
        assert_eq!(m.heat_tracked_files(), 2);
        m.delete("/d", true).unwrap();
        assert_eq!(m.heat_tracked_files(), 0);
    }

    #[test]
    fn rename_resets_heat() {
        // A common pattern writes to a staging path and renames into
        // place; the published file should not inherit staging heat.
        let m = boot_master(3);
        let block = put_file(&m, "/staging", rv_u(1));
        touch(&m, block, 5, 0);
        assert_eq!(m.heat_tracked_files(), 1);
        m.rename("/staging", "/published").unwrap();
        assert_eq!(m.heat_tracked_files(), 0, "rename must reset the file's heat");
    }

    #[test]
    fn tick_gcs_decayed_heat_entries() {
        let m = boot_master(3);
        let block = put_file(&m, "/f", rv_u(1));
        touch(&m, block, 5, 0);
        assert_eq!(m.heat_tracked_files(), 1);
        // A short tick keeps the entry alive (score still well above zero).
        m.tick(100);
        assert_eq!(m.heat_tracked_files(), 1);
        // After a long idle stretch the EWMA decays to ~0 and the tick-time
        // GC drops the entry (workers also go dead at this clock; the GC
        // must still run).
        m.tick(1_000_000);
        assert_eq!(m.heat_tracked_files(), 0, "tick must GC fully decayed heat entries");
    }

    #[test]
    fn autotier_promotes_hot_and_leaves_warm_alone() {
        let m = boot_master(3);
        let hot = put_file(&m, "/hot", ReplicationVector::msh(0, 0, 1));
        let warm = put_file(&m, "/warm", ReplicationVector::msh(0, 0, 1));
        // 5 touches this epoch → score 0.4·5 = 2.0 (hot); 1 touch → 0.4
        // (inside the warm hysteresis band).
        touch(&m, hot, 5, 0);
        touch(&m, warm, 1, 0);

        let decisions =
            m.autotier_scan(&EwmaThresholdClassifier::default(), &AutoTierConfig::default());
        assert_eq!(decisions.len(), 1);
        let d = &decisions[0];
        assert_eq!(d.path, "/hot");
        assert_eq!(d.direction, MigrationDirection::Promote);
        assert_eq!(d.from, ReplicationVector::msh(0, 0, 1));
        assert_eq!(d.to, ReplicationVector::msh(1, 0, 1));
        assert_eq!(d.copy_bytes, 1 << 20);

        // The vector edit is visible in the namespace and the §5 monitor
        // realizes it as a copy toward the Memory tier.
        assert_eq!(m.status("/hot").unwrap().rv, ReplicationVector::msh(1, 0, 1));
        assert_eq!(m.status("/warm").unwrap().rv, ReplicationVector::msh(0, 0, 1));
        let tasks = m.replication_scan();
        assert_eq!(tasks.len(), 1);
        let ReplicationTask::Copy { target, .. } = &tasks[0] else {
            panic!("expected a copy task");
        };
        assert_eq!(target.tier, StorageTier::Memory.id());

        // The move is recorded in the audit ring.
        let events = m.recent_migrations(10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, DecisionKind::Migration);
        assert!(events[0].policy.contains("promote"), "policy line: {}", events[0].policy);

        // Idempotent: the file already has its memory replica planned.
        assert!(m
            .autotier_scan(&EwmaThresholdClassifier::default(), &AutoTierConfig::default())
            .is_empty());
    }

    #[test]
    fn autotier_demotes_cold_files_without_losing_last_replica() {
        let m = boot_master(3);
        put_file(&m, "/cold", ReplicationVector::msh(1, 0, 1));
        // A memory-only file must be demoted *to* somewhere, not to zero
        // replicas.
        put_file(&m, "/pinned", ReplicationVector::msh(1, 0, 0));

        let decisions =
            m.autotier_scan(&EwmaThresholdClassifier::default(), &AutoTierConfig::default());
        assert_eq!(decisions.len(), 2);
        for d in &decisions {
            assert_eq!(d.direction, MigrationDirection::Demote);
        }
        assert_eq!(m.status("/cold").unwrap().rv, ReplicationVector::msh(0, 0, 1));
        assert_eq!(m.status("/pinned").unwrap().rv, ReplicationVector::msh(0, 0, 1));

        // The monitor turns the /cold demotion into a memory-replica
        // delete, and copies /pinned to HDD before trimming memory: the
        // memory replica is /pinned's only copy, so its trim must wait.
        let tasks = m.replication_scan();
        let deletes: Vec<_> = tasks
            .iter()
            .filter_map(|t| match t {
                ReplicationTask::Delete { location, .. } => Some(*location),
                _ => None,
            })
            .collect();
        assert_eq!(deletes.len(), 1, "only the safely-replicated file is trimmed immediately");
        assert_eq!(deletes[0].tier, StorageTier::Memory.id());
        let copies: Vec<_> = tasks
            .iter()
            .filter_map(|t| match t {
                ReplicationTask::Copy { block, target, .. } => Some((*block, *target)),
                _ => None,
            })
            .collect();
        assert_eq!(copies.len(), 1);
        let (pinned_block, target) = copies[0];
        assert_eq!(target.tier, StorageTier::Hdd.id());

        // Once the HDD copy confirms, the next scan completes the demotion
        // by trimming the now-redundant memory replica.
        m.commit_replica(pinned_block, target).unwrap();
        let tasks = m.replication_scan();
        assert_eq!(tasks.len(), 1);
        let ReplicationTask::Delete { location, .. } = &tasks[0] else {
            panic!("expected the deferred memory trim");
        };
        assert_eq!(location.tier, StorageTier::Memory.id());
    }

    #[test]
    fn autotier_respects_round_budgets() {
        let m = boot_master(3);
        let blocks: Vec<Block> = (0..4)
            .map(|i| put_file(&m, &format!("/f{i}"), ReplicationVector::msh(0, 0, 1)))
            .collect();
        for (i, b) in blocks.iter().enumerate() {
            // Distinct hotness so the ordering is deterministic: f0 hottest.
            touch(&m, *b, 10 - i as u32, 0);
        }

        let cfg = AutoTierConfig { max_files_per_round: 2, ..AutoTierConfig::default() };
        let decisions = m.autotier_scan(&EwmaThresholdClassifier::default(), &cfg);
        assert_eq!(decisions.len(), 2, "file cap bounds the round");
        assert_eq!(decisions[0].path, "/f0", "hottest files migrate first");
        assert_eq!(decisions[1].path, "/f1");

        // Byte budget: one 1 MB file fits, the rest wait for later rounds.
        let cfg = AutoTierConfig { max_bytes_per_round: 1 << 20, ..AutoTierConfig::default() };
        let decisions = m.autotier_scan(&EwmaThresholdClassifier::default(), &cfg);
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].path, "/f2");
    }
}
