//! The backup master (paper §2.1): tails the primary's edit log, maintains
//! an up-to-date in-memory namespace image, and periodically persists
//! checkpoints so the system can restart from the most recent one after a
//! primary failure.

use octopus_common::Result;

use crate::editlog::{encode_image, EditOp};
use crate::master::Master;
use crate::namespace::Namespace;

/// A backup master instance.
pub struct BackupMaster {
    ns: Namespace,
    applied: usize,
    checkpoints: Vec<Vec<u8>>,
}

impl Default for BackupMaster {
    fn default() -> Self {
        Self::new()
    }
}

impl BackupMaster {
    /// A fresh backup with an empty namespace image.
    pub fn new() -> Self {
        Self { ns: Namespace::new(), applied: 0, checkpoints: Vec::new() }
    }

    /// Pulls and applies the primary's edit-log tail. Returns the number of
    /// ops applied.
    pub fn sync_from(&mut self, primary: &Master) -> Result<usize> {
        let ops = primary.edits_since(self.applied);
        let n = ops.len();
        for op in ops {
            self.apply(op)?;
        }
        Ok(n)
    }

    /// Applies one streamed edit op.
    pub fn apply(&mut self, op: EditOp) -> Result<()> {
        op.apply(&mut self.ns)?;
        self.applied += 1;
        Ok(())
    }

    /// Number of ops applied so far.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Creates (and retains) a checkpoint of the current image.
    pub fn create_checkpoint(&mut self) -> Vec<u8> {
        let image = encode_image(&self.ns);
        self.checkpoints.push(image.clone());
        image
    }

    /// The most recent checkpoint, if any.
    pub fn latest_checkpoint(&self) -> Option<&[u8]> {
        self.checkpoints.last().map(|v| v.as_slice())
    }

    /// Read access to the mirrored namespace (for takeover and tests).
    pub fn namespace(&self) -> &Namespace {
        &self.ns
    }

    /// Fails over: constructs a new primary master from the backup's
    /// current image. Block locations repopulate from block reports, as in
    /// HDFS.
    pub fn take_over(&self, config: octopus_common::ClusterConfig) -> Result<Master> {
        Master::restore(config, &encode_image(&self.ns))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use octopus_common::MediaId;
    use octopus_common::{
        ClientLocation, ClusterConfig, MediaStats, RackId, ReplicationVector, TierId, WorkerId,
    };

    fn boot_master(n: u32) -> Master {
        let config = ClusterConfig::test_cluster(n, 10 << 20, 1 << 20);
        let master = Master::new(config).unwrap();
        for w in 0..n {
            let rack = RackId((w % 2) as u16);
            master.register_worker(WorkerId(w), rack, 1e9, 0);
            let media: Vec<MediaStats> = (0..3u8)
                .map(|t| MediaStats {
                    media: MediaId(w * 3 + t as u32),
                    worker: WorkerId(w),
                    rack,
                    tier: TierId(t),
                    capacity: 10 << 20,
                    remaining: 10 << 20,
                    nr_conn: 0,
                    write_thru: 1e8,
                    read_thru: 1e8,
                })
                .collect();
            master.heartbeat(WorkerId(w), media, 0, 0).unwrap();
        }
        master
    }

    #[test]
    fn backup_mirrors_primary() {
        let primary = boot_master(3);
        let mut backup = BackupMaster::new();
        primary.mkdir("/a").unwrap();
        primary.create_file("/a/f", ReplicationVector::from_replication_factor(2), None).unwrap();
        let n = backup.sync_from(&primary).unwrap();
        assert_eq!(n, 2);
        assert!(backup.namespace().resolve("/a/f").is_ok());

        // Incremental sync applies only new ops.
        primary.mkdir("/b").unwrap();
        assert_eq!(backup.sync_from(&primary).unwrap(), 1);
        assert_eq!(backup.applied(), primary.edit_count());
    }

    #[test]
    fn checkpoint_and_takeover() {
        let primary = boot_master(3);
        primary.mkdir("/x").unwrap();
        primary.create_file("/x/f", ReplicationVector::from_replication_factor(1), None).unwrap();
        let (block, locs) = primary.add_block("/x/f", 1 << 20, ClientLocation::OffCluster).unwrap();
        for l in &locs {
            primary.commit_replica(block, *l).unwrap();
        }
        primary.complete_file("/x/f").unwrap();

        let mut backup = BackupMaster::new();
        backup.sync_from(&primary).unwrap();
        let image = backup.create_checkpoint();
        assert_eq!(backup.latest_checkpoint().unwrap(), image.as_slice());

        // Primary "fails"; the backup takes over.
        let new_primary = backup.take_over(primary.config().clone()).unwrap();
        let st = new_primary.status("/x/f").unwrap();
        assert_eq!(st.len, 1 << 20);
        assert!(st.complete);
    }

    #[test]
    fn restart_from_checkpoint_plus_edits() {
        // The paper's recovery model: most recent checkpoint + log tail.
        let primary = boot_master(3);
        primary.mkdir("/a").unwrap();
        let mut backup = BackupMaster::new();
        backup.sync_from(&primary).unwrap();
        let checkpoint = backup.create_checkpoint();
        let cp_ops = primary.edit_count();

        primary.mkdir("/a/late").unwrap();
        let tail = primary.edits_since(cp_ops);

        let recovered = Master::restore(primary.config().clone(), &checkpoint).unwrap();
        for op in tail {
            // Re-apply the tail through the public surface.
            match op {
                EditOp::Mkdir { path } => recovered.mkdir(&path).unwrap(),
                other => panic!("unexpected tail op {other:?}"),
            }
        }
        assert!(recovered.status("/a/late").is_ok());
    }
}
