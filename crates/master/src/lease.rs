//! Write leases: single-writer semantics for open files.
//!
//! The master "regulates access to files" (paper §2.1); as in HDFS this
//! means a client must hold the file's lease to append blocks or close
//! it. Leases expire when a client disappears, after which the master
//! recovers the file (finalizes it at its current length) so other
//! clients are not blocked forever.

use std::collections::HashMap;

use octopus_common::{FsError, Result};

/// Identifies a lease holder. `SYSTEM` (id 0) is used by internal callers
/// (replication monitor, administrative tools, direct-master tests) and
/// bypasses conflict checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClientId(pub u64);

impl ClientId {
    /// The internal/administrative holder; never conflicts.
    pub const SYSTEM: ClientId = ClientId(0);

    /// Whether this is the system holder.
    pub fn is_system(self) -> bool {
        self == Self::SYSTEM
    }
}

#[derive(Debug, Clone)]
struct Lease {
    holder: ClientId,
    expires_ms: u64,
}

/// Tracks one lease per open file path.
#[derive(Debug)]
pub struct LeaseManager {
    leases: HashMap<String, Lease>,
    duration_ms: u64,
}

impl LeaseManager {
    /// Creates a manager with the given lease duration.
    pub fn new(duration_ms: u64) -> Self {
        Self { leases: HashMap::new(), duration_ms }
    }

    /// Grants (or refreshes) the lease on `path` to `holder`. Fails if a
    /// different, unexpired, non-system holder owns it.
    pub fn acquire(&mut self, path: &str, holder: ClientId, now_ms: u64) -> Result<()> {
        if let Some(l) = self.leases.get(path) {
            let live = l.expires_ms > now_ms;
            if live && !l.holder.is_system() && !holder.is_system() && l.holder != holder {
                return Err(FsError::LeaseConflict(format!(
                    "{path} is held by client {} until t={}ms",
                    l.holder.0, l.expires_ms
                )));
            }
        }
        self.leases
            .insert(path.to_string(), Lease { holder, expires_ms: now_ms + self.duration_ms });
        Ok(())
    }

    /// Verifies `holder` may mutate `path` and renews the lease. Absent
    /// leases are granted implicitly (e.g. after a master failover the
    /// in-flight writer re-establishes its lease on first use).
    pub fn check(&mut self, path: &str, holder: ClientId, now_ms: u64) -> Result<()> {
        self.acquire(path, holder, now_ms)
    }

    /// Releases the lease (file closed or deleted).
    pub fn release(&mut self, path: &str) {
        self.leases.remove(path);
    }

    /// Transfers a lease across a rename.
    pub fn rename(&mut self, src: &str, dst: &str) {
        if let Some(l) = self.leases.remove(src) {
            self.leases.insert(dst.to_string(), l);
        }
    }

    /// Paths whose leases have expired (candidates for lease recovery).
    pub fn expired(&self, now_ms: u64) -> Vec<String> {
        self.leases.iter().filter(|(_, l)| l.expires_ms <= now_ms).map(|(p, _)| p.clone()).collect()
    }

    /// Number of outstanding leases.
    pub fn len(&self) -> usize {
        self.leases.len()
    }

    /// Whether no leases are outstanding.
    pub fn is_empty(&self) -> bool {
        self.leases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_while_live() {
        let mut lm = LeaseManager::new(1000);
        lm.acquire("/f", ClientId(1), 0).unwrap();
        assert!(matches!(lm.acquire("/f", ClientId(2), 500), Err(FsError::LeaseConflict(_))));
        // Same holder renews.
        lm.acquire("/f", ClientId(1), 500).unwrap();
        // After expiry another client can take it.
        lm.acquire("/f", ClientId(2), 1600).unwrap();
    }

    #[test]
    fn system_bypasses() {
        let mut lm = LeaseManager::new(1000);
        lm.acquire("/f", ClientId(1), 0).unwrap();
        lm.check("/f", ClientId::SYSTEM, 10).unwrap();
        // ... and a system lease never blocks a client.
        lm.acquire("/g", ClientId::SYSTEM, 0).unwrap();
        lm.acquire("/g", ClientId(3), 10).unwrap();
    }

    #[test]
    fn release_and_rename() {
        let mut lm = LeaseManager::new(1000);
        lm.acquire("/a", ClientId(1), 0).unwrap();
        lm.rename("/a", "/b");
        assert!(matches!(lm.acquire("/b", ClientId(2), 10), Err(FsError::LeaseConflict(_))));
        lm.release("/b");
        lm.acquire("/b", ClientId(2), 10).unwrap();
        assert_eq!(lm.len(), 1);
    }

    #[test]
    fn expiry_listing() {
        let mut lm = LeaseManager::new(100);
        lm.acquire("/x", ClientId(1), 0).unwrap();
        lm.acquire("/y", ClientId(2), 50).unwrap();
        assert!(lm.expired(99).is_empty());
        let mut e = lm.expired(120);
        e.sort();
        assert_eq!(e, vec!["/x"]);
        assert_eq!(lm.expired(200).len(), 2);
    }
}
