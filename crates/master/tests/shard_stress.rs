//! Concurrency torture tests for the sharded master (ROADMAP item 1).
//!
//! The master stripes files across path-hashed namespace shards and
//! block-id-striped block maps, mirrors directories into every shard, and
//! funnels all mutations through a group-commit edit log. These tests
//! hammer that machinery with seeded multi-threaded mixes of
//! create/rename/delete/stat/list/set_replication over shard-crossing
//! paths, then audit the full invariant set after every run:
//!
//! 1. **Replay equivalence** — replaying the durable edit log into a
//!    fresh master (same shard count) reproduces the exact final
//!    namespace image: every path, kind, length, vector, and block list.
//! 2. **Namespace↔blockmap bijection** — the union of all files' block
//!    lists equals the block-map inventory exactly: no orphaned blocks
//!    surviving deletes, no file pointing at a missing block.
//! 3. **Contiguous offsets** — every file's located blocks tile
//!    `[0, len)` without gaps or overlaps.
//! 4. **No unreachable inodes** — the files/dirs reachable by walking
//!    `/` match the master's own counts.
//!
//! Plus two targeted regressions: a lock-order deadlock canary on
//! cross-shard renames running in opposing directions, and the
//! rename-vs-delete race (`rename /a/x → /b/x` vs `delete /b`) that must
//! neither deadlock nor leave an unreachable inode.

use std::sync::mpsc;
use std::time::Duration;

use octopus_common::{
    ClientLocation, ClusterConfig, MediaId, MediaStats, RackId, ReplicationVector, TierId, WorkerId,
};
use octopus_master::{EditLog, Master};

const BLOCK_SIZE: u64 = 1 << 20;

/// Boots an in-process master with `shards` namespace shards and `n`
/// registered workers (one medium per tier each), heartbeats applied.
fn boot(shards: usize, n: u32) -> Master {
    let mut config = ClusterConfig::test_cluster(n, 10 << 20, BLOCK_SIZE);
    config.master_shards = shards;
    let master = Master::new(config).unwrap();
    for w in 0..n {
        let rack = RackId((w % 2) as u16);
        master.register_worker(WorkerId(w), rack, 1e9, 0);
        let media: Vec<MediaStats> = (0..3u8)
            .map(|t| MediaStats {
                media: MediaId(w * 3 + t as u32),
                worker: WorkerId(w),
                rack,
                tier: TierId(t),
                capacity: 10 << 20,
                remaining: 10 << 20,
                nr_conn: 0,
                write_thru: [1900.0, 340.0, 126.0][t as usize] * 1048576.0,
                read_thru: [3200.0, 420.0, 177.0][t as usize] * 1048576.0,
            })
            .collect();
        master.heartbeat(WorkerId(w), media, 0, 0).unwrap();
    }
    master
}

/// Deterministic per-thread randomness (no external RNG dependency).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// The directories the mix plays in. A small name pool under a handful of
/// directories guarantees shard-crossing renames and same-path collisions
/// between threads.
const DIRS: [&str; 4] = ["/a", "/b", "/c/nested", "/d"];

fn rv(r: u8) -> ReplicationVector {
    ReplicationVector::from_replication_factor(r)
}

/// One seeded multi-threaded torture run. Every op result is allowed to
/// fail with a namespace error (races make all of them fallible) — what
/// must not happen is a panic, a deadlock, or an invariant violation
/// afterwards.
fn torture(seed: u64, threads: usize, iters: usize, shards: usize) -> Master {
    let master = boot(shards, 4);
    for d in DIRS {
        master.mkdir(d).unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..threads {
            let master = &master;
            s.spawn(move || {
                let mut rng = Lcg::new(seed * 131 + t as u64);
                for _ in 0..iters {
                    let dir = DIRS[rng.below(DIRS.len() as u64) as usize];
                    let name = rng.below(12);
                    let path = format!("{dir}/f{name}");
                    match rng.below(100) {
                        0..=34 => {
                            // Create; half the time also write a block and
                            // seal, sometimes leave the file open.
                            if master.create_file(&path, rv(rng.below(3) as u8 + 1), None).is_ok() {
                                if rng.below(2) == 0 {
                                    let len = (rng.below(4) + 1) * 1024;
                                    if let Ok((block, locs)) =
                                        master.add_block(&path, len, ClientLocation::OffCluster)
                                    {
                                        for l in locs {
                                            let _ = master.commit_replica(block, l);
                                        }
                                    }
                                    let _ = master.complete_file(&path);
                                } else if rng.below(2) == 0 {
                                    let _ = master.complete_file(&path);
                                }
                            }
                        }
                        35..=49 => {
                            let _ = master.delete(&path, false);
                        }
                        50..=69 => {
                            let to_dir = DIRS[rng.below(DIRS.len() as u64) as usize];
                            let to = format!("{to_dir}/f{}", rng.below(12));
                            let _ = master.rename(&path, &to);
                        }
                        70..=79 => {
                            let _ = master.status(&path);
                        }
                        80..=89 => {
                            let _ = master.list(dir);
                        }
                        90..=94 => {
                            let _ = master.set_replication(&path, rv(rng.below(3) as u8 + 1));
                        }
                        _ => {
                            let _ = master.mkdir(&format!("{dir}/sub{}", rng.below(3)));
                        }
                    }
                }
            });
        }
    });
    master
}

/// One walked entry: `(path, is_dir, len, rv, complete)`.
type WalkEntry = (String, bool, u64, ReplicationVector, bool);

/// Depth-first walk of the whole namespace through the public API.
fn walk(master: &Master) -> Vec<WalkEntry> {
    let mut out = Vec::new();
    let mut stack = vec!["/".to_string()];
    while let Some(dir) = stack.pop() {
        for e in master.list(&dir).unwrap() {
            let path =
                if dir == "/" { format!("/{}", e.name) } else { format!("{}/{}", dir, e.name) };
            if e.is_dir {
                stack.push(path.clone());
                out.push((path, true, 0, ReplicationVector::EMPTY, true));
            } else {
                let st = master.status(&path).unwrap();
                out.push((path, false, st.len, st.rv, st.complete));
            }
        }
    }
    out.sort();
    out
}

/// Audits the invariants described in the module docs against `master`.
fn check_invariants(master: &Master, shards: usize) {
    let image = walk(master);

    // 4. Reachability: the walk found exactly what the shards hold.
    let (files, dirs) = master.counts();
    let walked_files = image.iter().filter(|e| !e.1).count();
    let walked_dirs = image.iter().filter(|e| e.1).count();
    assert_eq!(walked_files, files, "unreachable or phantom files");
    assert_eq!(walked_dirs + 1, dirs, "unreachable or phantom directories (root is implicit)");

    // 2 + 3. Blockmap bijection and offset contiguity.
    let mut expected_blocks = Vec::new();
    for (path, is_dir, len, ..) in &image {
        if *is_dir {
            continue;
        }
        let id = master.status(path).unwrap().id;
        let located =
            master.get_file_block_locations(path, 0, u64::MAX, ClientLocation::OffCluster).unwrap();
        let mut offset = 0;
        for lb in &located {
            assert_eq!(lb.offset, offset, "{path}: non-contiguous block offsets");
            offset = lb.end();
            expected_blocks.push((lb.block.id, id));
        }
        assert_eq!(offset, *len, "{path}: block lengths do not tile the file length");
    }
    expected_blocks.sort();
    assert_eq!(master.block_inventory(), expected_blocks, "namespace↔blockmap bijection broken");

    // 1. Replay equivalence: the durable log alone rebuilds this image.
    let mut log = EditLog::in_memory();
    for op in master.edits_since(0) {
        log.append(op).unwrap();
    }
    let mut config = ClusterConfig::test_cluster(4, 10 << 20, BLOCK_SIZE);
    config.master_shards = shards;
    let replayed = Master::with_log(config, log).unwrap();
    assert_eq!(walk(&replayed), image, "edit-log replay diverged from the live image");
    let (rf, rd) = replayed.counts();
    assert_eq!((rf, rd), (files, dirs), "replayed counts diverged");
}

/// The headline suite: 20 consecutive seeded runs, shard counts cycling
/// through 1 (degenerate), 3 (uneven modulo), and 8 (the default), with
/// the full invariant audit after every run.
#[test]
fn seeded_torture_runs_hold_invariants() {
    for seed in 0..20u64 {
        let shards = [1, 3, 8][(seed % 3) as usize];
        let master = torture(seed, 8, 60, shards);
        check_invariants(&master, shards);
    }
}

/// Replay must also land on the same image when the shard count changes
/// between writer and reader — the log format is shard-agnostic.
#[test]
fn replay_is_shard_count_independent() {
    let master = torture(77, 6, 60, 4);
    let image = walk(&master);
    for shards in [1, 2, 8] {
        let mut log = EditLog::in_memory();
        for op in master.edits_since(0) {
            log.append(op).unwrap();
        }
        let mut config = ClusterConfig::test_cluster(4, 10 << 20, BLOCK_SIZE);
        config.master_shards = shards;
        let replayed = Master::with_log(config, log).unwrap();
        assert_eq!(walk(&replayed), image, "replay with {shards} shards diverged");
    }
}

/// Lock-order deadlock canary: pairs of threads renaming between the same
/// two shard-crossing directories in *opposite* directions. If the
/// cross-shard rename path ever acquired shard locks in operand order
/// instead of index order, these two loops would deadlock; the watchdog
/// turns that hang into a failure.
#[test]
fn cross_shard_rename_opposing_directions_no_deadlock() {
    let (done_tx, done_rx) = mpsc::channel();
    let t = std::thread::spawn(move || {
        let master = boot(8, 4);
        master.mkdir("/a").unwrap();
        master.mkdir("/b").unwrap();
        for i in 0..8 {
            master.create_file(&format!("/a/x{i}"), rv(1), None).unwrap();
            master.complete_file(&format!("/a/x{i}")).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4 {
                let master = &master;
                s.spawn(move || {
                    let mut rng = Lcg::new(t);
                    for _ in 0..200 {
                        let i = rng.below(8);
                        // Half the threads push a→b, half push b→a, over
                        // names that hash to different shards.
                        if t % 2 == 0 {
                            let _ = master.rename(&format!("/a/x{i}"), &format!("/b/x{i}"));
                        } else {
                            let _ = master.rename(&format!("/b/x{i}"), &format!("/a/x{i}"));
                        }
                    }
                });
            }
        });
        check_invariants(&master, 8);
        done_tx.send(()).unwrap();
    });
    done_rx
        .recv_timeout(Duration::from_secs(120))
        .expect("cross-shard rename loops deadlocked (lock-order inversion)");
    t.join().unwrap();
}

/// Regression: `rename /a/x → /b/x` racing `delete /b` (different shards)
/// must not deadlock and must not leave an unreachable inode — the file
/// ends up at `/a/x`, at `/b/x`, or deleted with the subtree; nothing
/// in between.
#[test]
fn rename_racing_recursive_delete_of_destination() {
    for seed in 0..20u64 {
        let master = boot(4, 4);
        master.mkdir("/a").unwrap();
        master.mkdir("/b").unwrap();
        master.create_file("/a/x", rv(1), None).unwrap();
        master.complete_file("/a/x").unwrap();
        std::thread::scope(|s| {
            let m1 = &master;
            let m2 = &master;
            s.spawn(move || {
                // Jitter the interleaving differently per seed.
                for _ in 0..seed % 7 {
                    let _ = m1.status("/a/x");
                }
                let _ = m1.rename("/a/x", "/b/x");
            });
            s.spawn(move || {
                for _ in 0..seed % 5 {
                    let _ = m2.list("/b");
                }
                let _ = m2.delete("/b", true);
            });
        });
        let at_a = master.status("/a/x").is_ok();
        let at_b = master.status("/b/x").is_ok();
        assert!(!(at_a && at_b), "file duplicated by rename/delete race");
        check_invariants(&master, 4);
    }
}

/// Same race against the *source* subtree: `rename /a/x → /b/x` racing
/// `delete /a` must never fabricate a file at the destination while the
/// source subtree reports deleted, unless the rename happened first.
#[test]
fn rename_racing_recursive_delete_of_source() {
    for seed in 0..10u64 {
        let master = boot(4, 4);
        master.mkdir("/a").unwrap();
        master.mkdir("/b").unwrap();
        master.create_file("/a/x", rv(1), None).unwrap();
        master.complete_file("/a/x").unwrap();
        std::thread::scope(|s| {
            let m1 = &master;
            let m2 = &master;
            s.spawn(move || {
                for _ in 0..seed % 4 {
                    let _ = m1.status("/a/x");
                }
                let _ = m1.rename("/a/x", "/b/x");
            });
            s.spawn(move || {
                let _ = m2.delete("/a", true);
            });
        });
        check_invariants(&master, 4);
    }
}

/// Directory renames across the mirror set: every shard must agree on the
/// move, including files striped to other shards under the moved prefix.
#[test]
fn directory_rename_carries_striped_children() {
    let master = boot(8, 4);
    master.mkdir("/src/deep").unwrap();
    for i in 0..32 {
        let p = format!("/src/deep/f{i}");
        master.create_file(&p, rv(1), None).unwrap();
        master.complete_file(&p).unwrap();
    }
    master.rename("/src", "/dst").unwrap();
    assert!(master.status("/src").is_err());
    for i in 0..32 {
        assert!(master.status(&format!("/dst/deep/f{i}")).is_ok(), "child f{i} lost in move");
    }
    check_invariants(&master, 8);
}
