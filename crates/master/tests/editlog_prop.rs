//! Property-based tests of the edit-log codec: every op round-trips, the
//! framed stream decoder survives truncation at any byte, and corruption
//! of any complete record is detected — the durability contract of the
//! master's write-ahead log.

use proptest::prelude::*;

use octopus_common::{BlockId, ReplicationVector};
use octopus_master::editlog::decode_stream;
use octopus_master::{EditLog, EditOp, Namespace, TierQuota};

/// A path made of safe components (the namespace validates real paths;
/// the codec itself must handle arbitrary strings).
fn arb_path() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z0-9_.-]{1,12}", 1..4).prop_map(|c| format!("/{}", c.join("/")))
}

fn arb_op() -> impl Strategy<Value = EditOp> {
    prop_oneof![
        arb_path().prop_map(|path| EditOp::Mkdir { path }),
        (arb_path(), any::<u64>(), 1u64..1 << 40).prop_map(|(path, bits, block_size)| {
            EditOp::CreateFile { path, rv: ReplicationVector::from_bits(bits), block_size }
        }),
        (arb_path(), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(path, b, gen, len)| EditOp::AddBlock { path, block: BlockId(b), gen, len }),
        arb_path().prop_map(|path| EditOp::CloseFile { path }),
        arb_path().prop_map(|path| EditOp::AppendFile { path }),
        (arb_path(), arb_path()).prop_map(|(src, dst)| EditOp::Rename { src, dst }),
        arb_path().prop_map(|path| EditOp::Delete { path }),
        (arb_path(), any::<u64>()).prop_map(|(path, bits)| EditOp::SetReplication {
            path,
            rv: ReplicationVector::from_bits(bits),
        }),
        (arb_path(), 0u8..7, proptest::option::of(any::<u64>())).prop_map(|(path, tier, limit)| {
            let mut quota = TierQuota::unlimited();
            quota.per_tier[tier as usize] = limit;
            EditOp::SetQuota { path, quota }
        }),
    ]
}

proptest! {
    /// Encode/decode round-trips every op exactly.
    #[test]
    fn op_codec_round_trips(op in arb_op()) {
        let enc = op.encode();
        prop_assert_eq!(EditOp::decode(&enc).unwrap(), op);
    }

    /// A framed stream decodes fully; truncating it at any byte yields a
    /// clean prefix (never a panic, never garbage ops).
    #[test]
    fn stream_truncation_is_safe(
        ops in proptest::collection::vec(arb_op(), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut log = EditLog::in_memory();
        for op in &ops {
            log.append(op.clone()).unwrap();
        }
        // Re-frame by encoding through a file-less path: use the image
        // trick — encode each op with framing via a namespace round trip
        // is unnecessary; frame manually through EditLog::open semantics.
        // Instead rebuild the byte stream from the ops:
        let mut buf = Vec::new();
        for op in &ops {
            let body = op.encode();
            buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
            buf.extend_from_slice(&octopus_common::checksum::crc32(&body).to_le_bytes());
            buf.extend_from_slice(&body);
        }
        let full = decode_stream(&buf).unwrap();
        prop_assert_eq!(&full, &ops);

        let cut = (buf.len() as f64 * cut_frac) as usize;
        let prefix = decode_stream(&buf[..cut]).unwrap();
        prop_assert!(prefix.len() <= ops.len());
        prop_assert_eq!(&prefix[..], &ops[..prefix.len()]);
    }

    /// Flipping any single byte of a complete record either fails the CRC
    /// or (if it hits a length header) truncates — it never yields a
    /// different op silently... except the byte may land in a later
    /// record, in which case the earlier prefix still decodes intact.
    #[test]
    fn corruption_never_silently_alters_ops(
        ops in proptest::collection::vec(arb_op(), 1..6),
        flip_at_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        for op in &ops {
            let body = op.encode();
            buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
            buf.extend_from_slice(&octopus_common::checksum::crc32(&body).to_le_bytes());
            buf.extend_from_slice(&body);
        }
        let pos = ((buf.len() - 1) as f64 * flip_at_frac) as usize;
        let mut bad = buf.clone();
        bad[pos] ^= 1 << flip_bit;
        match decode_stream(&bad) {
            Err(_) => {} // CRC mismatch: detected.
            Ok(decoded) => {
                // Every decoded op must be one of the originals, in order
                // (a flipped length/CRC header can only truncate).
                prop_assert!(decoded.len() <= ops.len());
                for (d, o) in decoded.iter().zip(ops.iter()) {
                    prop_assert_eq!(d, o);
                }
            }
        }
    }

    /// Replaying a syntactically valid op sequence into a namespace never
    /// panics (errors are fine — e.g. closing a non-existent file).
    #[test]
    fn replay_never_panics(ops in proptest::collection::vec(arb_op(), 0..20)) {
        let mut ns = Namespace::new();
        for op in ops {
            let _ = op.apply(&mut ns);
        }
        let _ = ns.counts();
    }
}
